// The unified environment-aware executor (sim/trial.h).
//
// The heart of this suite is byte-level conformance against REFERENCE
// implementations of the three engines run_trial replaced: the pre-merge
// run_step_trials lock-step loop and the pre-merge run_search_async
// min-heap sweep are reimplemented here verbatim, and the unified executor
// must reproduce them exactly across strategies, schedules, crash models,
// and seeds. On top of that come the genuinely new semantics: schedules and
// crashes for step-level strategies (waiting and halting agents) and
// multi-target races under any environment.
#include "sim/trial.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "baselines/random_walk.h"
#include "core/harmonic.h"
#include "core/known_k.h"
#include "rng/splitmix64.h"
#include "sim/multi_target.h"
#include "sim/runner.h"
#include "test_support.h"
#include "util/sat.h"

namespace ants::sim {
namespace {

using grid::Point;
using testing::PerAgentScriptedStrategy;
using testing::ScriptedStrategy;

/// Deterministic stepper marching east forever.
class EastStrategy final : public StepStrategy {
 public:
  std::string name() const override { return "east"; }
  std::unique_ptr<StepProgram> make_program(AgentContext) const override {
    class P final : public StepProgram {
      Point step(rng::Rng&, Point current) override {
        return current + Point{1, 0};
      }
    };
    return std::make_unique<P>();
  }
};

/// Agent i marches in direction i%4 (for multi-agent coverage tests).
class FanOutStrategy final : public StepStrategy {
 public:
  std::string name() const override { return "fan"; }
  std::unique_ptr<StepProgram> make_program(AgentContext ctx) const override {
    class P final : public StepProgram {
     public:
      explicit P(int dir) : dir_(dir) {}
      Point step(rng::Rng&, Point current) override {
        return current + grid::kDirections[dir_];
      }

     private:
      int dir_;
    };
    return std::make_unique<P>(ctx.agent_index % 4);
  }
};

// ---------------------------------------------------------------------------
// Reference implementations: the engines as they existed BEFORE the merge,
// kept verbatim so the unified executor is pinned to their exact behavior.
// ---------------------------------------------------------------------------

/// The pre-merge run_step_search: all k agents advance one edge per tick,
/// no environment support.
SearchResult reference_step_search(const StepStrategy& strategy, int k,
                                   Point treasure, const rng::Rng& trial_rng,
                                   Time time_cap) {
  SearchResult result;
  if (treasure == grid::kOrigin) {
    result.found = true;
    result.time = 0;
    result.finder = 0;
    return result;
  }
  std::vector<std::unique_ptr<StepProgram>> programs;
  std::vector<rng::Rng> rngs;
  std::vector<Point> pos(static_cast<std::size_t>(k), grid::kOrigin);
  for (int a = 0; a < k; ++a) {
    programs.push_back(strategy.make_program(AgentContext{a, k}));
    rngs.push_back(trial_rng.child(static_cast<std::uint64_t>(a)));
  }
  for (Time t = 1; t <= time_cap; ++t) {
    for (int a = 0; a < k; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      const Point next = programs[ia]->step(rngs[ia], pos[ia]);
      pos[ia] = next;
      if (next == treasure) {
        result.found = true;
        result.time = t;
        result.finder = a;
        return result;
      }
    }
  }
  result.found = false;
  result.time = time_cap;
  return result;
}

/// The pre-merge run_search_async: interleaved min-heap sweep with
/// starts/lifetimes drawn from the dedicated child streams.
TrialResult reference_async_search(const Strategy& strategy, int k,
                                   Point treasure, const rng::Rng& trial_rng,
                                   const StartSchedule& schedule,
                                   const CrashModel& crashes,
                                   const EngineConfig& config) {
  rng::Rng sched_rng = trial_rng.child(kScheduleStream);
  rng::Rng crash_rng = trial_rng.child(kCrashStream);
  const std::vector<Time> starts = schedule.draw(k, sched_rng);
  const std::vector<Time> lifetimes = crashes.draw_lifetimes(k, crash_rng);

  TrialResult result;
  result.last_start = *std::max_element(starts.begin(), starts.end());

  if (treasure == grid::kOrigin) {
    const auto first =
        std::min_element(starts.begin(), starts.end()) - starts.begin();
    result.found = true;
    result.time = starts[static_cast<std::size_t>(first)];
    result.finder = static_cast<int>(first);
    result.first_target = 0;
    result.from_last_start = 0;
    return result;
  }

  struct AgentState {
    std::unique_ptr<AgentProgram> program;
    rng::Rng rng;
    Point pos = grid::kOrigin;
    Time elapsed = 0;
  };
  std::vector<AgentState> agents;
  for (int a = 0; a < k; ++a) {
    agents.push_back(AgentState{
        strategy.make_program(AgentContext{a, k}),
        trial_rng.child(static_cast<std::uint64_t>(a)), grid::kOrigin, 0});
  }
  using Entry = std::pair<Time, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int a = 0; a < k; ++a) {
    const auto ua = static_cast<std::size_t>(a);
    if (lifetimes[ua] <= 0) {
      ++result.crashed;
      continue;
    }
    queue.emplace(starts[ua], a);
  }
  Time best = kNeverTime;
  int finder = -1;
  while (!queue.empty()) {
    const auto [abs_clock, a] = queue.top();
    queue.pop();
    const Time bound =
        std::min(config.time_cap, best == kNeverTime ? best : best - 1);
    if (abs_clock > bound) break;
    const auto ua = static_cast<std::size_t>(a);
    AgentState& agent = agents[ua];
    ++result.segments;
    const Segment seg =
        realize(agent.program->next(agent.rng), agent.pos, grid::kOrigin);
    if (const auto hit = hit_offset(seg, treasure)) {
      const Time when_active = util::sat_add(agent.elapsed, *hit);
      if (when_active <= lifetimes[ua]) {
        const Time when_abs = util::sat_add(starts[ua], when_active);
        if (when_abs <= config.time_cap &&
            (when_abs < best || (when_abs == best && a < finder))) {
          best = when_abs;
          finder = a;
        }
      }
    }
    agent.elapsed = util::sat_add(agent.elapsed, duration(seg));
    agent.pos = end_position(seg);
    if (agent.elapsed >= lifetimes[ua]) {
      ++result.crashed;
      continue;
    }
    queue.emplace(util::sat_add(starts[ua], agent.elapsed), a);
  }
  if (best != kNeverTime) {
    result.found = true;
    result.time = best;
    result.finder = finder;
    result.first_target = 0;
    result.from_last_start =
        best > result.last_start ? best - result.last_start : 0;
  } else {
    result.found = false;
    result.time = config.time_cap;
    result.from_last_start = config.time_cap;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Conformance: the lock-step backend under sync/no-crash IS the old step
// engine, trial for trial.
// ---------------------------------------------------------------------------

TEST(TrialConformance, StepBackendMatchesOldStepEngineByteForByte) {
  const baselines::RandomWalkStrategy rw;
  const EastStrategy east;
  const FanOutStrategy fan;
  const struct {
    const StepStrategy* strategy;
    Point treasure;
  } cases[] = {
      {&rw, {2, 1}}, {&rw, {1, 0}}, {&east, {25, 0}}, {&east, {5, 1}},
      {&fan, {0, 12}},
  };
  for (const auto& c : cases) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      const rng::Rng trial(seed * 13 + 1);
      const SearchResult ref =
          reference_step_search(*c.strategy, 4, c.treasure, trial, 5000);
      EngineConfig config;
      config.time_cap = 5000;
      const TrialResult r = run_trial(
          *c.strategy, 4, single_target_environment(c.treasure), trial,
          config);
      ASSERT_EQ(r.found, ref.found) << c.strategy->name() << " " << seed;
      ASSERT_EQ(r.time, ref.time) << c.strategy->name() << " " << seed;
      ASSERT_EQ(r.finder, ref.finder) << c.strategy->name() << " " << seed;
      EXPECT_EQ(r.crashed, 0);
      EXPECT_EQ(r.last_start, 0);
      if (r.found) {
        EXPECT_EQ(r.first_target, 0);
      }
    }
  }
}

// run_step_trials (the Monte-Carlo wrapper) must aggregate exactly what the
// old per-trial loop produced: same per-trial seeds, same placements, same
// times vector.
TEST(TrialConformance, RunStepTrialsMatchesOldLoopByteForByte) {
  const baselines::RandomWalkStrategy rw;
  RunConfig config;
  config.trials = 40;
  config.seed = 0xBEEF;
  config.time_cap = 3000;
  const Placement placement = uniform_ring_placement();
  const RunStats rs = run_step_trials(rw, 3, 2, placement, config);

  ASSERT_EQ(rs.times.size(), 40u);
  for (std::size_t trial = 0; trial < 40; ++trial) {
    rng::Rng trial_rng(rng::mix_seed(config.seed, trial));
    const Point treasure = placement(trial_rng, 2);
    const SearchResult ref =
        reference_step_search(rw, 3, treasure, trial_rng, config.time_cap);
    ASSERT_EQ(rs.times[trial], static_cast<double>(ref.time)) << trial;
  }
}

// ---------------------------------------------------------------------------
// Conformance: the segment backend under any schedule/crash IS the old
// async engine, field for field.
// ---------------------------------------------------------------------------

TEST(TrialConformance, SegmentBackendMatchesOldAsyncEngineByteForByte) {
  const core::KnownKStrategy known(6);
  const core::HarmonicStrategy harmonic(0.5);
  const StaggeredStart staggered(3);
  const UniformRandomStart uniform_start(64);
  const SyncStart sync;
  const DoaCrash doa(0.3);
  const ExponentialLifetime exp_life(400.0);
  const NoCrash none;

  const Strategy* strategies[] = {&known, &harmonic};
  const StartSchedule* schedules[] = {&sync, &staggered, &uniform_start};
  const CrashModel* crashes[] = {&none, &doa, &exp_life};

  EngineConfig config;
  config.time_cap = 200'000;
  for (const Strategy* s : strategies) {
    for (const StartSchedule* sched : schedules) {
      for (const CrashModel* crash : crashes) {
        for (std::uint64_t seed = 0; seed < 8; ++seed) {
          const rng::Rng trial(seed * 7 + 2);
          const TrialResult ref = reference_async_search(
              *s, 6, Point{9, -4}, trial, *sched, *crash, config);
          const TrialResult r = run_trial(
              *s, 6,
              draw_environment(6, {Point{9, -4}}, *sched, *crash, trial),
              trial, config);
          ASSERT_EQ(r.found, ref.found)
              << s->name() << " " << sched->name() << " " << crash->name()
              << " " << seed;
          ASSERT_EQ(r.time, ref.time);
          ASSERT_EQ(r.finder, ref.finder);
          ASSERT_EQ(r.first_target, ref.first_target);
          ASSERT_EQ(r.segments, ref.segments);
          ASSERT_EQ(r.last_start, ref.last_start);
          ASSERT_EQ(r.from_last_start, ref.from_last_start);
          ASSERT_EQ(r.crashed, ref.crashed);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Environment drawing.
// ---------------------------------------------------------------------------

TEST(DrawEnvironment, UsesDedicatedStreamsDeterministically) {
  const rng::Rng trial(42);
  const UniformRandomStart schedule(100);
  const ExponentialLifetime crashes(500.0);
  const TrialEnvironment a =
      draw_environment(8, {Point{3, 3}}, schedule, crashes, trial);
  const TrialEnvironment b =
      draw_environment(8, {Point{3, 3}}, schedule, crashes, trial);
  EXPECT_EQ(a.starts, b.starts);
  EXPECT_EQ(a.lifetimes, b.lifetimes);
  ASSERT_EQ(a.targets.size(), 1u);

  // Changing the crash model must not perturb the schedule stream and vice
  // versa (independent child streams).
  const NoCrash none;
  const TrialEnvironment c =
      draw_environment(8, {Point{3, 3}}, schedule, none, trial);
  EXPECT_EQ(c.starts, a.starts);
  const SyncStart sync;
  const TrialEnvironment d =
      draw_environment(8, {Point{3, 3}}, sync, crashes, trial);
  EXPECT_EQ(d.lifetimes, a.lifetimes);
}

TEST(TrialEnvironmentShape, LastStartAndEmptyDefaults) {
  TrialEnvironment env = single_target_environment(Point{4, 0});
  EXPECT_EQ(env.last_start(), 0);
  env.starts = {3, 11, 0};
  EXPECT_EQ(env.last_start(), 11);
}

TEST(RunTrial, ValidatesArguments) {
  const ScriptedStrategy s({GoTo{Point{1, 0}}});
  const EastStrategy east;
  const rng::Rng trial(1);
  const TrialEnvironment env = single_target_environment(Point{1, 0});

  EXPECT_THROW(run_trial(s, 0, env, trial), std::invalid_argument);
  TrialEnvironment no_targets;
  EXPECT_THROW(run_trial(s, 1, no_targets, trial), std::invalid_argument);
  TrialEnvironment bad_starts = env;
  bad_starts.starts = {0, 0};  // k = 1
  EXPECT_THROW(run_trial(s, 1, bad_starts, trial), std::invalid_argument);
  TrialEnvironment bad_lifetimes = env;
  bad_lifetimes.lifetimes = {5, 5, 5};
  EXPECT_THROW(run_trial(s, 1, bad_lifetimes, trial), std::invalid_argument);
  // A step strategy demands a finite cap.
  EXPECT_THROW(run_trial(east, 1, env, trial), std::invalid_argument);
  // Exactly one family pointer must be set.
  TrialStrategy empty;
  EXPECT_THROW(run_trial(empty, 1, env, trial), std::invalid_argument);
  TrialStrategy both;
  both.segment = &s;
  both.step = &east;
  EXPECT_THROW(run_trial(both, 1, env, trial), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// New semantics: schedules and crashes for step-level strategies.
// ---------------------------------------------------------------------------

TEST(StepEnvironment, DelayedAgentWaitsAtTheSource) {
  // One eastbound agent delayed by 3: the treasure at (5,0) is hit at
  // t = 3 + 5, and measured from the last start the walk still costs 5.
  const EastStrategy east;
  const rng::Rng trial(7);
  EngineConfig config;
  config.time_cap = 1000;
  TrialEnvironment env = single_target_environment(Point{5, 0});
  env.starts = {3};
  const TrialResult r = run_trial(east, 1, env, trial, config);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 8);
  EXPECT_EQ(r.last_start, 3);
  EXPECT_EQ(r.from_last_start, 5);
}

TEST(StepEnvironment, EarlierStarterWinsTheRace) {
  // Both agents march east; agent 1 starts 4 ticks before agent 0.
  const EastStrategy east;
  const rng::Rng trial(8);
  EngineConfig config;
  config.time_cap = 1000;
  TrialEnvironment env = single_target_environment(Point{6, 0});
  env.starts = {4, 0};
  const TrialResult r = run_trial(east, 2, env, trial, config);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.finder, 1);
  EXPECT_EQ(r.time, 6);
  EXPECT_EQ(r.from_last_start, 2);
}

TEST(StepEnvironment, CrashedAgentHaltsInPlace) {
  // Lifetime 4 < distance 5: the agent dies one step short and the trial
  // censors at the cap.
  const EastStrategy east;
  const rng::Rng trial(9);
  EngineConfig config;
  config.time_cap = 50;
  TrialEnvironment env = single_target_environment(Point{5, 0});
  env.lifetimes = {4};
  const TrialResult r = run_trial(east, 1, env, trial, config);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.crashed, 1);
  EXPECT_EQ(r.time, 50);
  // Exactly 4 steps were taken before the halt.
  EXPECT_EQ(r.segments, 4);
}

TEST(StepEnvironment, AgentHittingExactlyAtLifetimeCounts) {
  const EastStrategy east;
  const rng::Rng trial(10);
  EngineConfig config;
  config.time_cap = 50;
  TrialEnvironment env = single_target_environment(Point{5, 0});
  env.lifetimes = {5};
  const TrialResult r = run_trial(east, 1, env, trial, config);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 5);
  EXPECT_EQ(r.crashed, 0);
}

TEST(StepEnvironment, DoaAgentsNeverStep) {
  const EastStrategy east;
  const rng::Rng trial(11);
  EngineConfig config;
  config.time_cap = 20;
  TrialEnvironment env = single_target_environment(Point{2, 0});
  env.lifetimes = {0, 0};
  const TrialResult r = run_trial(east, 2, env, trial, config);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.crashed, 2);
  EXPECT_EQ(r.segments, 0);
}

TEST(StepEnvironment, OriginTargetFoundAtEarliestStart) {
  const EastStrategy east;
  const rng::Rng trial(12);
  EngineConfig config;
  config.time_cap = 100;
  TrialEnvironment env = single_target_environment(grid::kOrigin);
  env.starts = {9, 4, 11};
  const TrialResult r = run_trial(east, 3, env, trial, config);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 4);
  EXPECT_EQ(r.finder, 1);
  EXPECT_EQ(r.from_last_start, 0);
}

// Dead-on-arrival agents must not be credited with an origin-target find:
// a lifetime <= 0 agent never acts, so the earliest SURVIVOR is the finder
// and the DOA agents count as crashed (keeping mean_crashed/survivors
// consistent with the non-origin path).
TEST(StepEnvironment, OriginTargetSkipsDoaAgentsAsFinder) {
  const EastStrategy east;
  const rng::Rng trial(13);
  EngineConfig config;
  config.time_cap = 100;
  TrialEnvironment env = single_target_environment(grid::kOrigin);
  env.starts = {1, 7, 2};
  env.lifetimes = {0, 5, 0};  // agents 0 and 2 are DOA despite earlier starts
  const TrialResult r = run_trial(east, 3, env, trial, config);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.finder, 1);
  EXPECT_EQ(r.time, 7);
  EXPECT_EQ(r.crashed, 2);
  EXPECT_EQ(r.from_last_start, 0);
}

TEST(StepEnvironment, OriginTargetAllDoaIsNotFound) {
  const EastStrategy east;
  const rng::Rng trial(14);
  EngineConfig config;
  config.time_cap = 50;
  TrialEnvironment env = single_target_environment(grid::kOrigin);
  env.lifetimes = {0, 0, 0};
  const TrialResult r = run_trial(east, 3, env, trial, config);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.crashed, 3);
  EXPECT_EQ(r.time, 50);
  EXPECT_EQ(r.from_last_start, 50);
}

TEST(StepEnvironment, OriginTargetSurvivorPastCapIsNotFound) {
  const EastStrategy east;
  const rng::Rng trial(15);
  EngineConfig config;
  config.time_cap = 10;
  TrialEnvironment env = single_target_environment(grid::kOrigin);
  env.starts = {3, 25};
  env.lifetimes = {0, 9000};  // only survivor wakes up after the cap
  const TrialResult r = run_trial(east, 2, env, trial, config);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.crashed, 1);
  EXPECT_EQ(r.time, 10);
}

// ---------------------------------------------------------------------------
// New semantics: multi-target races, both backends.
// ---------------------------------------------------------------------------

TEST(MultiTargetTrial, StepBackendNearTargetWins) {
  const EastStrategy east;
  const rng::Rng trial(13);
  EngineConfig config;
  config.time_cap = 100;
  TrialEnvironment env;
  env.targets = {Point{7, 0}, Point{3, 0}};
  const TrialResult r = run_trial(east, 1, env, trial, config);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.first_target, 1);
  EXPECT_EQ(r.time, 3);
}

TEST(MultiTargetTrial, SegmentBackendMatchesFirstOfSetMultiEngine) {
  const core::HarmonicStrategy s(0.5);
  const std::vector<Point> targets{{6, 2}, {-9, 4}, {0, -12}};
  EngineConfig config;
  config.time_cap = 200'000;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const rng::Rng trial(seed * 3 + 1);
    const MultiSearchResult multi =
        run_search_multi(s, 6, targets, trial, config, false);
    TrialEnvironment env;
    env.targets = targets;
    const TrialResult r = run_trial(s, 6, env, trial, config);
    ASSERT_EQ(r.found, multi.found) << seed;
    ASSERT_EQ(r.time, multi.first_time) << seed;
    ASSERT_EQ(r.finder, multi.finder) << seed;
    ASSERT_EQ(r.first_target, multi.first_target) << seed;
  }
}

TEST(MultiTargetTrial, CrashCanForfeitTheNearPatch) {
  // Agent 0 would reach the near patch at t = 3 but dies at t = 2; agent 1
  // (delayed, immortal) reaches the far patch instead.
  const PerAgentScriptedStrategy s({
      {GoTo{Point{3, 0}}},   // agent 0: heads for the near patch
      {GoTo{Point{0, 8}}},   // agent 1: heads for the far patch
  });
  const rng::Rng trial(14);
  EngineConfig config;
  config.time_cap = 1000;
  TrialEnvironment env;
  env.targets = {Point{3, 0}, Point{0, 8}};
  env.starts = {0, 2};
  env.lifetimes = {2, kNeverTime};
  const TrialResult r = run_trial(s, 2, env, trial, config);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.first_target, 1);
  EXPECT_EQ(r.finder, 1);
  EXPECT_EQ(r.time, 10);  // started at 2, walked 8
  EXPECT_EQ(r.crashed, 1);
}

TEST(MultiTargetTrial, TieBreaksOnLowestTargetIndex) {
  // Two targets at the SAME node: the lower index wins the tie.
  const ScriptedStrategy s({GoTo{Point{4, 0}}});
  const rng::Rng trial(15);
  TrialEnvironment env;
  env.targets = {Point{4, 0}, Point{4, 0}};
  const TrialResult r = run_trial(s, 1, env, trial);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.first_target, 0);
}

// ---------------------------------------------------------------------------
// The unified Monte-Carlo driver.
// ---------------------------------------------------------------------------

TEST(RunEnvTrials, MeanFirstTargetSeesTheForagingPreference) {
  // pair-style draw: near patch at distance 2, far patch at distance 16.
  const core::HarmonicStrategy s(0.5);
  TrialStrategy strategy;
  strategy.segment = &s;
  const Placement placement = uniform_ring_placement();
  TargetProcess pair;
  pair.grid = [&placement](rng::Rng& rng, std::int64_t d, Time,
                           TrialEnvironment* env) {
    env->targets = {placement(rng, 2), placement(rng, d)};
  };
  RunConfig config;
  config.trials = 60;
  config.seed = 0xF00D;
  config.time_cap = 500'000;
  const AsyncRunStats rs = run_env_trials(strategy, 8, 16, pair, SyncStart(),
                                          NoCrash(), config);
  EXPECT_GT(rs.base.success_rate, 0.9);
  // The near patch (index 0) wins nearly every race.
  EXPECT_LT(rs.mean_first_target, 0.2);
  EXPECT_GE(rs.mean_first_target, 0.0);
}

TEST(RunEnvTrials, StepStrategyUnderScheduleAndCrash) {
  const baselines::RandomWalkStrategy rw;
  TrialStrategy strategy;
  strategy.step = &rw;
  RunConfig one;
  one.trials = 24;
  one.seed = 31;
  one.time_cap = 4000;
  one.threads = 1;
  RunConfig many = one;
  many.threads = 6;
  const StaggeredStart schedule(5);
  const DoaCrash crashes(0.25);
  const AsyncRunStats a =
      run_env_trials(strategy, 4, 1, single_target(uniform_ring_placement()),
                     schedule, crashes, one);
  const AsyncRunStats b =
      run_env_trials(strategy, 4, 1, single_target(uniform_ring_placement()),
                     schedule, crashes, many);
  // Thread-count independence extends to the new family/environment combo.
  EXPECT_EQ(a.base.times, b.base.times);
  EXPECT_DOUBLE_EQ(a.mean_crashed, b.mean_crashed);
  EXPECT_DOUBLE_EQ(a.from_last_start.mean, b.from_last_start.mean);
  // k = 4 with staggered(gap=5): the last start is always 15.
  EXPECT_DOUBLE_EQ(a.mean_last_start, 15.0);
  EXPECT_GT(a.mean_crashed, 0.0);
  EXPECT_LT(a.mean_crashed, 4.0);
}

TEST(RunEnvTrials, StepStrategyRequiresFiniteCap) {
  const baselines::RandomWalkStrategy rw;
  TrialStrategy strategy;
  strategy.step = &rw;
  RunConfig config;
  config.trials = 2;
  EXPECT_THROW(
      run_env_trials(strategy, 1, 2, single_target(axis_placement()),
                     SyncStart(), NoCrash(), config),
      std::invalid_argument);
}

}  // namespace
}  // namespace ants::sim
