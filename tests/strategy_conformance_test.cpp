// Conformance suite: every sim::Strategy in the library, one contract.
//
// Parameterized over a factory list so each requirement is checked against
// EVERY strategy — paper algorithms, remark variants, baselines, ablations.
// The contract (what the engine and runner assume):
//
//   1. programs are infinite: next() keeps producing ops without throwing;
//   2. ops are well-formed: non-negative spiral budgets, adjacent FollowPath
//      hops, finite GoTo targets;
//   3. determinism: same rng seed => identical op stream;
//   4. engine integration: a small-scale collaborative search terminates
//      and (for the searching strategies) succeeds under a generous cap;
//   5. sync/no-crash async runs reproduce the plain engine exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "baselines/ablation_variants.h"
#include "baselines/levy.h"
#include "baselines/sector_sweep.h"
#include "baselines/spiral_single.h"
#include "core/approx_k.h"
#include "core/harmonic.h"
#include "core/hedged.h"
#include "core/known_k.h"
#include "core/lowmem.h"
#include "core/single_shot.h"
#include "core/uniform.h"
#include "sim/async_engine.h"
#include "sim/engine.h"
#include "sim/placement.h"
#include "sim/runner.h"

namespace ants {
namespace {

struct StrategyCase {
  std::string label;
  std::function<std::unique_ptr<sim::Strategy>()> make;
  bool always_finds;  ///< finds a D=8 treasure at k=8 under a generous cap
};

std::vector<StrategyCase> all_cases() {
  return {
      {"known-k", [] { return std::make_unique<core::KnownKStrategy>(8); },
       true},
      {"approx-under",
       [] {
         return std::make_unique<core::ApproxKStrategy>(
             8, 2.0, core::ApproxMode::kUnder);
       },
       true},
      {"uniform",
       [] { return std::make_unique<core::UniformStrategy>(0.5); }, true},
      {"harmonic",
       [] { return std::make_unique<core::HarmonicStrategy>(0.5); }, true},
      {"hedged",
       [] { return std::make_unique<core::HedgedApproxStrategy>(16.0, 0.5); },
       true},
      {"sweep-known-k",
       [] { return std::make_unique<core::SingleSweepKnownK>(8); }, true},
      {"sweep-uniform",
       [] { return std::make_unique<core::SingleSweepUniform>(0.5); }, true},
      {"lowmem-uniform",
       [] { return std::make_unique<core::LowMemUniformStrategy>(0.5); },
       true},
      {"lowmem-harmonic",
       [] { return std::make_unique<core::LowMemHarmonicStrategy>(0.5); },
       true},
      {"sector-sweep",
       [] { return std::make_unique<baselines::SectorSweepStrategy>(); },
       true},
      {"spiral-single",
       [] { return std::make_unique<baselines::SpiralSingleStrategy>(); },
       true},
      {"levy-loop",
       [] { return std::make_unique<baselines::LevyStrategy>(2.0, true, 32); },
       true},
      // Free Levy flights drift off; success within the cap is not
      // guaranteed, only the op-stream contract is.
      {"levy-free",
       [] {
         return std::make_unique<baselines::LevyStrategy>(1.5, false, 0);
       },
       false},
      {"ak-rw-local",
       [] {
         return std::make_unique<baselines::KnownKRandomLocalStrategy>(8);
       },
       true},
      {"ak-no-return",
       [] { return std::make_unique<baselines::KnownKNoReturnStrategy>(8); },
       true},
  };
}

class StrategyConformanceTest
    : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategyConformanceTest, ProducesWellFormedInfiniteOpStream) {
  const auto strategy = GetParam().make();
  const auto program = strategy->make_program(sim::AgentContext{0, 8});
  rng::Rng rng(12345);
  for (int i = 0; i < 200; ++i) {
    const sim::Op op = program->next(rng);
    if (const auto* sp = std::get_if<sim::SpiralFor>(&op)) {
      EXPECT_GE(sp->duration, 0) << i;
    } else if (const auto* go = std::get_if<sim::GoTo>(&op)) {
      // Targets must be sane lattice points (|coord| leaves arithmetic
      // headroom; see grid/point.h).
      EXPECT_LT(util::iabs(go->target.x), std::int64_t{1} << 50) << i;
      EXPECT_LT(util::iabs(go->target.y), std::int64_t{1} << 50) << i;
    } else if (const auto* fp = std::get_if<sim::FollowPath>(&op)) {
      for (std::size_t s = 1; s < fp->steps.size(); ++s) {
        ASSERT_TRUE(grid::adjacent(fp->steps[s - 1], fp->steps[s]));
      }
    }
  }
}

TEST_P(StrategyConformanceTest, OpStreamIsDeterministicPerSeed) {
  const auto strategy = GetParam().make();
  const auto p0 = strategy->make_program(sim::AgentContext{0, 8});
  const auto p1 = strategy->make_program(sim::AgentContext{0, 8});
  rng::Rng r0(777), r1(777);
  for (int i = 0; i < 120; ++i) {
    const sim::Op a = p0->next(r0);
    const sim::Op b = p1->next(r1);
    ASSERT_EQ(a.index(), b.index()) << i;
    if (const auto* go = std::get_if<sim::GoTo>(&a)) {
      EXPECT_EQ(go->target, std::get<sim::GoTo>(b).target) << i;
    } else if (const auto* sp = std::get_if<sim::SpiralFor>(&a)) {
      EXPECT_EQ(sp->duration, std::get<sim::SpiralFor>(b).duration) << i;
    } else if (const auto* fp = std::get_if<sim::FollowPath>(&a)) {
      const auto& fb = std::get<sim::FollowPath>(b);
      ASSERT_EQ(fp->steps.size(), fb.steps.size()) << i;
      for (std::size_t s = 0; s < fp->steps.size(); ++s) {
        ASSERT_EQ(fp->steps[s], fb.steps[s]);
      }
    }
  }
}

TEST_P(StrategyConformanceTest, SmallScaleSearchTerminates) {
  const auto strategy = GetParam().make();
  sim::RunConfig config;
  config.trials = 30;
  config.seed = 2468;
  config.time_cap = 1 << 20;
  const sim::RunStats rs = sim::run_trials(
      *strategy, 8, 8, sim::uniform_ring_placement(), config);
  if (GetParam().always_finds) {
    EXPECT_GT(rs.success_rate, 0.9) << strategy->name();
  }
  EXPECT_GE(rs.time.mean, 0.0);
}

TEST_P(StrategyConformanceTest, AsyncSyncNoCrashMatchesPlainEngine) {
  const auto strategy = GetParam().make();
  const grid::Point treasure{5, -3};
  sim::EngineConfig config;
  config.time_cap = 1 << 20;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const rng::Rng trial(seed);
    const sim::SearchResult plain =
        run_search(*strategy, 8, treasure, trial, config);
    const sim::TrialResult async = run_search_async(
        *strategy, 8, treasure, trial, sim::SyncStart(), sim::NoCrash(),
        config);
    ASSERT_EQ(async.found, plain.found) << seed;
    ASSERT_EQ(async.time, plain.time) << seed;
    ASSERT_EQ(async.finder, plain.finder) << seed;
  }
}

TEST_P(StrategyConformanceTest, NameIsStableAndNonEmpty) {
  const auto a = GetParam().make();
  const auto b = GetParam().make();
  EXPECT_FALSE(a->name().empty());
  EXPECT_EQ(a->name(), b->name());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyConformanceTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      std::string id = info.param.label;
      for (char& c : id) {
        if (c == '-') c = '_';
      }
      return id;
    });

}  // namespace
}  // namespace ants
