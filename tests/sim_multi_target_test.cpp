#include "sim/multi_target.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/harmonic.h"
#include "core/known_k.h"
#include "test_support.h"

namespace ants::sim {
namespace {

using testing::PerAgentScriptedStrategy;
using testing::ScriptedStrategy;

TEST(MultiTarget, RejectsBadArguments) {
  const ScriptedStrategy s({GoTo{grid::Point{1, 0}}});
  const rng::Rng trial(1);
  EXPECT_THROW(run_search_multi(s, 0, {grid::Point{1, 0}}, trial),
               std::invalid_argument);
  EXPECT_THROW(run_search_multi(s, 1, {}, trial), std::invalid_argument);
  // Collect-all needs a finite cap.
  EXPECT_THROW(
      run_search_multi(s, 1, {grid::Point{1, 0}}, trial, {}, true),
      std::invalid_argument);
}

TEST(MultiTarget, SingleTargetMatchesPlainEngine) {
  const core::KnownKStrategy s(4);
  const grid::Point treasure{9, -5};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const rng::Rng trial(seed);
    const SearchResult plain = run_search(s, 4, treasure, trial);
    const MultiSearchResult multi =
        run_search_multi(s, 4, {treasure}, trial);
    ASSERT_EQ(multi.first_time, plain.time) << seed;
    ASSERT_EQ(multi.finder, plain.finder) << seed;
    ASSERT_EQ(multi.first_target, 0);
  }
}

TEST(MultiTarget, NearTargetOnPathWinsRace) {
  // One agent walks through (3,0) then (10,0): the near target must win
  // with the exact walk offset.
  const ScriptedStrategy s({GoTo{grid::Point{10, 0}}});
  const rng::Rng trial(2);
  const auto r = run_search_multi(
      s, 1, {grid::Point{10, 0}, grid::Point{3, 0}}, trial);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.first_target, 1);
  EXPECT_EQ(r.first_time, 3);
}

TEST(MultiTarget, TargetAtOriginIsInstant) {
  const ScriptedStrategy s({GoTo{grid::Point{5, 5}}});
  const rng::Rng trial(3);
  const auto r = run_search_multi(
      s, 2, {grid::Point{7, 7}, grid::kOrigin}, trial);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.first_time, 0);
  EXPECT_EQ(r.first_target, 1);
}

TEST(MultiTarget, CollectAllRecordsEveryVisit) {
  // The agent walks to (4,0), then (from there) the engine realizes GoTo
  // (4,3): both targets' first-visit times are exact.
  const ScriptedStrategy s({GoTo{grid::Point{4, 0}}, GoTo{grid::Point{4, 3}}});
  const rng::Rng trial(4);
  EngineConfig config;
  config.time_cap = 1000;
  const auto r = run_search_multi(
      s, 1, {grid::Point{4, 0}, grid::Point{4, 3}, grid::Point{50, 50}},
      trial, config, /*collect_all=*/true);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.first_target, 0);
  EXPECT_EQ(r.target_times[0], 4);
  EXPECT_EQ(r.target_times[1], 7);
  EXPECT_EQ(r.target_times[2], kNeverTime);  // never reached within the cap
}

TEST(MultiTarget, CollectAllMatchesFirstOfSetOnTheWinner) {
  const core::HarmonicStrategy s(0.5);
  const std::vector<grid::Point> targets{{6, 2}, {-9, 4}, {0, -12}};
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const rng::Rng trial(seed);
    EngineConfig config;
    config.time_cap = 200'000;
    const auto race = run_search_multi(s, 6, targets, trial, config, false);
    const auto all = run_search_multi(s, 6, targets, trial, config, true);
    ASSERT_EQ(race.found, all.found) << seed;
    if (race.found) {
      ASSERT_EQ(race.first_time, all.first_time) << seed;
      ASSERT_EQ(race.first_target, all.first_target) << seed;
      EXPECT_EQ(all.target_times[static_cast<std::size_t>(all.first_target)],
                all.first_time);
    }
  }
}

TEST(MultiTarget, DiscoveryTimesAreMonotoneInTargetDistance) {
  // Collect-all with the harmonic strategy: averaged over trials, nearer
  // patches are discovered earlier — the central-place-foraging preference
  // from the paper's introduction.
  const core::HarmonicStrategy s(0.5);
  const std::vector<grid::Point> targets{{4, 0}, {0, 16}, {-48, 0}};
  double sums[3] = {0, 0, 0};
  const int trials = 60;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    const rng::Rng trial(seed * 31 + 5);
    EngineConfig config;
    config.time_cap = 500'000;
    const auto r = run_search_multi(s, 8, targets, trial, config, true);
    for (int i = 0; i < 3; ++i) {
      sums[i] += static_cast<double>(
          std::min(r.target_times[static_cast<std::size_t>(i)],
                   config.time_cap));
    }
  }
  EXPECT_LT(sums[0], sums[1]);
  EXPECT_LT(sums[1], sums[2]);
}

TEST(MultiTarget, NearestFirstProbabilityIsHigh) {
  // First-of-set mode: the patch at distance 4 should win the race against
  // the patch at distance 40 almost always.
  const core::HarmonicStrategy s(0.5);
  int near_wins = 0, races = 0;
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    const rng::Rng trial(seed * 17 + 3);
    EngineConfig config;
    config.time_cap = 1'000'000;
    const auto r = run_search_multi(
        s, 8, {grid::Point{2, 2}, grid::Point{20, 20}}, trial, config);
    if (!r.found) continue;
    ++races;
    near_wins += (r.first_target == 0);
  }
  ASSERT_GT(races, 60);
  EXPECT_GT(static_cast<double>(near_wins) / races, 0.85);
}

TEST(MultiTarget, DeterministicPerSeed) {
  const core::KnownKStrategy s(8);
  const std::vector<grid::Point> targets{{5, 5}, {-7, 2}};
  const rng::Rng trial(99);
  const auto a = run_search_multi(s, 8, targets, trial);
  const auto b = run_search_multi(s, 8, targets, trial);
  EXPECT_EQ(a.first_time, b.first_time);
  EXPECT_EQ(a.finder, b.finder);
  EXPECT_EQ(a.first_target, b.first_target);
}

}  // namespace
}  // namespace ants::sim
