#include "plane/segment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "rng/rng.h"

namespace ants::plane {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// ---------------------------------------------------------------------------
// Vec2 basics.
// ---------------------------------------------------------------------------

TEST(Vec2, ArithmeticAndNorms) {
  const Vec2 a{3, 4}, b{1, -1};
  EXPECT_EQ((a + b), (Vec2{4, 3}));
  EXPECT_EQ((a - b), (Vec2{2, 5}));
  EXPECT_EQ((a * 2.0), (Vec2{6, 8}));
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot(b), -1.0);
  EXPECT_NEAR(distance(a, b), std::hypot(2, 5), 1e-12);
}

TEST(Vec2, UnitVectorOnCircle) {
  for (double th = 0; th < kTwoPi; th += 0.1) {
    EXPECT_NEAR(unit(th).norm(), 1.0, 1e-12);
  }
  EXPECT_NEAR(unit(0).x, 1.0, 1e-12);
  EXPECT_NEAR(unit(kTwoPi / 4).y, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Line sightings (exact quadratic).
// ---------------------------------------------------------------------------

TEST(LineSighting, HeadOnHitAtDistanceMinusEps) {
  // Walking from (0,0) to (10,0), target at (6,0), eps = 1: first sighting
  // when the agent reaches x = 5.
  const LineMove move{{0, 0}, {10, 0}};
  const auto t = first_sighting(Move{move}, Vec2{6, 0}, 1.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 5.0, 1e-9);
}

TEST(LineSighting, StartInsideSightIsImmediate) {
  const LineMove move{{0, 0}, {10, 0}};
  EXPECT_EQ(first_sighting(Move{move}, Vec2{0.5, 0.3}, 1.0), 0.0);
}

TEST(LineSighting, PerpendicularGrazePasses) {
  // Target 0.99 off the line: sighted; 1.01 off: missed (eps = 1).
  const LineMove move{{0, 0}, {10, 0}};
  EXPECT_TRUE(first_sighting(Move{move}, Vec2{5, 0.99}, 1.0).has_value());
  EXPECT_FALSE(first_sighting(Move{move}, Vec2{5, 1.01}, 1.0).has_value());
}

TEST(LineSighting, BehindTheSegmentIsMissed) {
  const LineMove move{{0, 0}, {10, 0}};
  EXPECT_FALSE(first_sighting(Move{move}, Vec2{-3, 0}, 1.0).has_value());
  EXPECT_FALSE(first_sighting(Move{move}, Vec2{13, 0}, 1.0).has_value());
}

TEST(LineSighting, ZeroLengthMoveOnlySeesItsOwnDisk) {
  const LineMove move{{2, 2}, {2, 2}};
  EXPECT_TRUE(first_sighting(Move{move}, Vec2{2.5, 2}, 1.0).has_value());
  EXPECT_FALSE(first_sighting(Move{move}, Vec2{4, 2}, 1.0).has_value());
}

TEST(LineSighting, MatchesDenseSamplingOnRandomInstances) {
  rng::Rng rng(404);
  for (int iter = 0; iter < 300; ++iter) {
    const LineMove move{{rng.uniform_real(-20, 20), rng.uniform_real(-20, 20)},
                        {rng.uniform_real(-20, 20), rng.uniform_real(-20, 20)}};
    const Vec2 target{rng.uniform_real(-25, 25), rng.uniform_real(-25, 25)};
    const double eps = rng.uniform_real(0.5, 2.0);
    const auto got = first_sighting(Move{move}, target, eps);

    // Dense reference: sample every 1e-3 of travel.
    const double len = (move.to - move.from).norm();
    std::optional<Time> expect;
    const Vec2 dir = len > 0 ? (move.to - move.from) * (1.0 / len) : Vec2{};
    for (double s = 0; s <= len; s += 1e-3) {
      if (distance(move.from + dir * s, target) <= eps) {
        expect = s;
        break;
      }
    }
    if (expect.has_value()) {
      ASSERT_TRUE(got.has_value()) << iter;
      EXPECT_NEAR(*got, *expect, 2e-3) << iter;
    } else if (got.has_value()) {
      // The analytic hit must be a graze the sampler stepped over.
      const Vec2 p = move.from + dir * *got;
      EXPECT_NEAR(distance(p, target), eps, 1e-6) << iter;
    }
  }
}

// ---------------------------------------------------------------------------
// Archimedean spiral math.
// ---------------------------------------------------------------------------

TEST(MovePositionAt, LineInterpolatesAndClamps) {
  const Move move = LineMove{{1, 1}, {1, 11}};
  EXPECT_EQ(move_position_at(move, -3.0), (Vec2{1, 1}));
  EXPECT_EQ(move_position_at(move, 0.0), (Vec2{1, 1}));
  const Vec2 mid = move_position_at(move, 5.0);
  EXPECT_NEAR(mid.x, 1.0, 1e-12);
  EXPECT_NEAR(mid.y, 6.0, 1e-12);
  EXPECT_EQ(move_position_at(move, 10.0), (Vec2{1, 11}));
  EXPECT_EQ(move_position_at(move, 99.0), (Vec2{1, 11}));
  // Degenerate zero-length move: every offset is the start point.
  EXPECT_EQ(move_position_at(Move{LineMove{{2, 3}, {2, 3}}}, 1.0),
            (Vec2{2, 3}));
}

TEST(MovePositionAt, SpiralTracksArcLengthAndEndsAtMoveEnd) {
  const SpiralMove sp{{5, -2}, 2.0, 300.0};
  const Move move{sp};
  const double a = sp.pitch / (2.0 * 3.14159265358979323846);
  for (const double s : {0.0, 1.0, 37.5, 150.0, 299.0}) {
    const Vec2 p = move_position_at(move, s);
    // The point sits on the spiral: its radius from the center is a*theta
    // for the theta whose arc length is s.
    const double theta = spiral_theta_for_arc(a, s);
    EXPECT_NEAR(distance(p, sp.center), a * theta, 1e-8) << "s=" << s;
    EXPECT_EQ(p, spiral_point_at(sp.center, a, theta));
  }
  EXPECT_EQ(move_position_at(move, sp.duration), move_end(move));
  EXPECT_EQ(move_position_at(move, sp.duration + 50.0), move_end(move));
}

TEST(SpiralMath, ArcLengthMonotoneAndConvex) {
  const double a = 0.3;
  double prev = 0;
  for (double th = 0.5; th < 60; th += 0.5) {
    const double s = spiral_arc_length(a, th);
    EXPECT_GT(s, prev);
    prev = s;
  }
  // Large-theta asymptotic: s ~ (a/2) theta^2.
  EXPECT_NEAR(spiral_arc_length(a, 100.0), 0.5 * a * 100 * 100,
              0.01 * 0.5 * a * 100 * 100);
}

TEST(SpiralMath, ThetaForArcInvertsArcLength) {
  const double a = 0.15915494309189535;  // pitch 1
  for (double th = 0; th < 80; th += 0.37) {
    const double s = spiral_arc_length(a, th);
    EXPECT_NEAR(spiral_theta_for_arc(a, s), th, 1e-8 * (1 + th));
  }
}

TEST(SpiralMath, PointAtRadiusGrowsLinearly) {
  const double a = 0.5;
  for (double th = 0; th < 40; th += 1.1) {
    const Vec2 p = spiral_point_at({0, 0}, a, th);
    EXPECT_NEAR(p.norm(), a * th, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Spiral sightings vs dense path sampling.
// ---------------------------------------------------------------------------

// Reference: walk the spiral in theta space with arc steps of ~ds (the
// local arc per radian is sqrt(a^2 + r^2), so dtheta = ds / that) and
// report the first sample within eps. Avoids a Newton solve per sample.
std::optional<Time> dense_spiral_sighting(const SpiralMove& sp, Vec2 target,
                                          double eps, double ds) {
  const double a = sp.pitch / kTwoPi;
  double th = 0;
  while (true) {
    const double s = spiral_arc_length(a, th);
    if (s > sp.duration) return std::nullopt;
    if (distance(spiral_point_at(sp.center, a, th), target) <= eps) {
      return s;
    }
    const double r = a * th;
    th += ds / std::sqrt(a * a + r * r);
  }
}

TEST(SpiralSighting, CenterTargetImmediate) {
  const SpiralMove sp{{0, 0}, 1.0, 100.0};
  EXPECT_EQ(first_sighting(Move{sp}, Vec2{0.2, -0.1}, 1.0), 0.0);
}

TEST(SpiralSighting, FarTargetBeyondBudgetMissed) {
  // Budget 100 reaches radius ~ sqrt(2*a*100) ~ 5.6 with pitch 1; a target
  // at radius 30 cannot be sighted.
  const SpiralMove sp{{0, 0}, 1.0, 100.0};
  EXPECT_FALSE(first_sighting(Move{sp}, Vec2{30, 0}, 1.0).has_value());
}

TEST(SpiralSighting, CoversEverythingWithinSweptRadius) {
  // pitch = 1, eps = 1 > pitch/2: no blind rings. Every target within the
  // (conservative) swept radius must be sighted.
  const SpiralMove sp{{0, 0}, 1.0, 4000.0};
  const double a = sp.pitch / kTwoPi;
  const double theta_end = spiral_theta_for_arc(a, sp.duration);
  const double reach = a * theta_end - 2.0;  // one coil of margin
  rng::Rng rng(505);
  for (int iter = 0; iter < 250; ++iter) {
    const double r = rng.uniform_real(0.0, reach);
    const Vec2 target = unit(rng.angle()) * r;
    EXPECT_TRUE(first_sighting(Move{sp}, target, 1.0).has_value())
        << "r=" << r << " iter=" << iter;
  }
}

// Sampled references detect grazes one ds late or miss them; treat "one
// side missed but the other's sighting is within band of eps" as agreement.
void expect_sighting_agreement(const SpiralMove& sp, Vec2 target, double eps,
                               double ds, int iter) {
  const double a = sp.pitch / kTwoPi;
  const auto got = first_sighting(Move{sp}, target, eps);
  const auto expect = dense_spiral_sighting(sp, target, eps, ds);
  if (got.has_value() && expect.has_value()) {
    EXPECT_NEAR(*got, *expect, ds + 0.01 * *expect) << iter;
    return;
  }
  if (got.has_value() != expect.has_value()) {
    // Grazing pass: the minimum approach must hug the sight boundary.
    const double th = spiral_theta_for_arc(
        a, got.has_value() ? *got : *expect);
    const double approach =
        distance(spiral_point_at(sp.center, a, th), target);
    EXPECT_NEAR(approach, eps, 0.1) << iter << " graze check";
  }
}

TEST(SpiralSighting, MatchesDenseSamplingNearCenter) {
  // Near-center regime (dense-scan path in the implementation).
  rng::Rng rng(606);
  const SpiralMove sp{{0, 0}, 1.0, 600.0};
  for (int iter = 0; iter < 40; ++iter) {
    const Vec2 target = unit(rng.angle()) * rng.uniform_real(1.5, 12.0);
    expect_sighting_agreement(sp, target, 0.8, 2e-2, iter);
  }
}

TEST(SpiralSighting, MatchesDenseSamplingDeepRegime) {
  // Deep regime (per-coil ternary path): pitch 1, targets past the 50-pitch
  // threshold.
  rng::Rng rng(707);
  const SpiralMove sp{{0, 0}, 1.0, 12000.0};
  for (int iter = 0; iter < 12; ++iter) {
    const Vec2 target = unit(rng.angle()) * rng.uniform_real(52.0, 60.0);
    expect_sighting_agreement(sp, target, 0.9, 2e-2, iter);
  }
}

TEST(SpiralSighting, OffCenterSpiralsWork) {
  const SpiralMove sp{{100, -50}, 1.0, 3000.0};
  const auto t = first_sighting(Move{sp}, Vec2{104, -50}, 1.0);
  ASSERT_TRUE(t.has_value());
  // Radius 4 is reached at arc ~ (a/2) (r/a)^2 = r^2/(2a) with a = 1/2pi.
  const double a = 1.0 / kTwoPi;
  EXPECT_LT(*t, 16.0 / (2 * a) * 1.5);
  EXPECT_GT(*t, 1.0);
}

// ---------------------------------------------------------------------------
// Durations and end positions.
// ---------------------------------------------------------------------------

TEST(MoveGeometry, LineDurationIsLength) {
  EXPECT_DOUBLE_EQ(move_duration(Move{LineMove{{0, 0}, {3, 4}}}), 5.0);
  EXPECT_EQ(move_end(Move{LineMove{{0, 0}, {3, 4}}}), (Vec2{3, 4}));
}

TEST(MoveGeometry, SpiralDurationIsBudgetAndEndOnSpiral) {
  const SpiralMove sp{{1, 1}, 1.0, 500.0};
  EXPECT_DOUBLE_EQ(move_duration(Move{sp}), 500.0);
  const Vec2 end = move_end(Move{sp});
  const double a = sp.pitch / kTwoPi;
  const double theta = spiral_theta_for_arc(a, sp.duration);
  EXPECT_NEAR(distance(end, sp.center), a * theta, 1e-9);
}

}  // namespace
}  // namespace ants::plane
