#include "core/lowmem.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <variant>
#include <vector>

#include "core/uniform.h"
#include "grid/point.h"
#include "sim/placement.h"
#include "sim/runner.h"

namespace ants::core {
namespace {

using sim::GoTo;
using sim::Op;
using sim::ReturnToSource;
using sim::SpiralFor;

// ---------------------------------------------------------------------------
// The randomized counter primitive.
// ---------------------------------------------------------------------------

TEST(RandomizedCounter, ExponentZeroIsInstant) {
  rng::Rng rng(1);
  EXPECT_EQ(randomized_counter_steps(rng, 0, 1000), 0);
}

TEST(RandomizedCounter, NeedsAtLeastExponentSteps) {
  rng::Rng rng(2);
  for (int l = 1; l <= 10; ++l) {
    for (int rep = 0; rep < 50; ++rep) {
      EXPECT_GE(randomized_counter_steps(rng, l, 1 << 30), l);
    }
  }
}

TEST(RandomizedCounter, MeanMatchesClosedForm) {
  // E[steps to l consecutive heads] = 2^(l+1) - 2.
  rng::Rng rng(3);
  for (const int l : {3, 5, 8}) {
    const int n = 20000;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(
          randomized_counter_steps(rng, l, std::int64_t{1} << 40));
    }
    const double expected = std::exp2(l + 1) - 2;
    // Std dev of the counter is O(2^l); n = 2e4 gives a tight CI.
    EXPECT_NEAR(sum / n, expected, 0.08 * expected) << "l=" << l;
  }
}

TEST(RandomizedCounter, LargeExponentSamplerMatchesMean) {
  // l = 20 uses the O(1) renewal/CLT sampler; its mean must still be
  // 2^(l+1) - 2 and every draw must be >= l.
  rng::Rng rng(7);
  const int l = 20;
  const int n = 4000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const std::int64_t s =
        randomized_counter_steps(rng, l, std::int64_t{1} << 40);
    ASSERT_GE(s, l);
    sum += static_cast<double>(s);
  }
  const double expected = std::exp2(l + 1) - 2;
  // sd(T) ~ 2^(l+1), so the mean of 4000 samples has sd ~ expected/63.
  EXPECT_NEAR(sum / n, expected, 0.1 * expected);
}

TEST(RandomizedCounter, LargeExponentRespectsCap) {
  rng::Rng rng(8);
  for (int rep = 0; rep < 100; ++rep) {
    EXPECT_LE(randomized_counter_steps(rng, 40, 1 << 20), 1 << 20);
  }
}

TEST(RandomizedCounter, BothRegimesAgreeAtTheBoundary) {
  // The exact and sampled regimes meet at kExactCounterExponent (12); their
  // means at l = 12 and l = 13 must be in the right 2:1-ish ratio, i.e. no
  // discontinuity at the switch.
  rng::Rng rng(9);
  const int n = 6000;
  double mean12 = 0, mean13 = 0;
  for (int i = 0; i < n; ++i) {
    mean12 += static_cast<double>(
        randomized_counter_steps(rng, 12, std::int64_t{1} << 40));
    mean13 += static_cast<double>(
        randomized_counter_steps(rng, 13, std::int64_t{1} << 40));
  }
  mean12 /= n;
  mean13 /= n;
  EXPECT_NEAR(mean13 / mean12, 2.0, 0.25);
}

TEST(RandomizedCounter, CapIsRespectedExactly) {
  rng::Rng rng(4);
  for (int rep = 0; rep < 200; ++rep) {
    EXPECT_LE(randomized_counter_steps(rng, 20, 100), 100);
  }
}

TEST(RandomizedCounter, RejectsNegativeArguments) {
  rng::Rng rng(5);
  EXPECT_THROW(randomized_counter_steps(rng, -1, 10), std::invalid_argument);
  EXPECT_THROW(randomized_counter_steps(rng, 1, -10), std::invalid_argument);
}

TEST(RandomizedCounter, TailDecaysGeometrically) {
  // P(steps > m * 2^(l+1)) should fall off roughly like e^-m: check the
  // empirical survival at m = 1, 2, 4 is decreasing and small at m = 4.
  rng::Rng rng(6);
  const int l = 6;
  const double mean = std::exp2(l + 1) - 2;
  const int n = 20000;
  int over1 = 0, over2 = 0, over4 = 0;
  for (int i = 0; i < n; ++i) {
    const auto s = static_cast<double>(
        randomized_counter_steps(rng, l, std::int64_t{1} << 40));
    over1 += (s > mean);
    over2 += (s > 2 * mean);
    over4 += (s > 4 * mean);
  }
  EXPECT_GT(over1, over2);
  EXPECT_GT(over2, over4);
  EXPECT_LT(static_cast<double>(over4) / n, 0.05);
}

// ---------------------------------------------------------------------------
// Low-memory uniform strategy.
// ---------------------------------------------------------------------------

TEST(LowMemUniform, RejectsNegativeEps) {
  EXPECT_THROW(LowMemUniformStrategy(-0.1), std::invalid_argument);
  EXPECT_NO_THROW(LowMemUniformStrategy(0.0));
}

TEST(LowMemUniform, ExponentsTrackExactScheduleWithinOne) {
  // The counter exponents must be the rounded log2 of Algorithm 1's exact
  // closed forms: check directly against UniformStrategy.
  const LowMemUniformStrategy lowmem(0.3);
  const UniformStrategy exact(0.3);
  for (int i = 0; i <= 16; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double d = static_cast<double>(exact.ball_radius(i, j));
      const double t = static_cast<double>(exact.spiral_budget(i, j));
      EXPECT_LE(std::abs(lowmem.walk_exponent(i, j) - std::log2(d)), 0.51)
          << i << "," << j;
      EXPECT_LE(std::abs(lowmem.spiral_exponent(i, j) - std::log2(t)), 0.51)
          << i << "," << j;
    }
  }
}

TEST(LowMemUniform, OpStreamIsTripleCycle) {
  const LowMemUniformStrategy strategy(0.5);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(41);
  for (int trip = 0; trip < 25; ++trip) {
    ASSERT_TRUE(std::holds_alternative<GoTo>(program->next(rng)));
    const Op sp = program->next(rng);
    ASSERT_TRUE(std::holds_alternative<SpiralFor>(sp));
    EXPECT_GE(std::get<SpiralFor>(sp).duration, 1);
    ASSERT_TRUE(std::holds_alternative<ReturnToSource>(program->next(rng)));
  }
}

TEST(LowMemUniform, WalkLengthsConcentrateAroundSchedule) {
  // The first phase of big-stage 6's stage 6 (i = j = 6-ish scales) should
  // produce walk lengths within a small constant of the exact D_ij on
  // average. Sample the program's first GoTo many times.
  const LowMemUniformStrategy strategy(0.5);
  const UniformStrategy exact(0.5);
  // First trip is stage 0, phase 0: D_00 = 1. Draw across many programs and
  // average; mean radius must be within [0.25, 4] x D_00-ish bounds.
  double sum = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    rng::Rng rng(static_cast<std::uint64_t>(i) + 1000);
    const auto program = strategy.make_program(sim::AgentContext{});
    const Op go = program->next(rng);
    sum += static_cast<double>(grid::l1_norm(std::get<GoTo>(go).target));
  }
  const double mean = sum / n;
  const double d00 = static_cast<double>(exact.ball_radius(0, 0));
  EXPECT_GT(mean, 0.2 * d00);
  EXPECT_LT(mean, 5.0 * d00);
}

TEST(LowMemUniform, IsUniformIgnoresContext) {
  const LowMemUniformStrategy strategy(0.5);
  const auto p0 = strategy.make_program(sim::AgentContext{0, 1});
  const auto p1 = strategy.make_program(sim::AgentContext{9, 4096});
  rng::Rng r0(77), r1(77);
  for (int i = 0; i < 30; ++i) {
    const Op a = p0->next(r0);
    const Op b = p1->next(r1);
    ASSERT_EQ(a.index(), b.index());
    if (const auto* go = std::get_if<GoTo>(&a)) {
      EXPECT_EQ(go->target, std::get<GoTo>(b).target);
    } else if (const auto* sp = std::get_if<SpiralFor>(&a)) {
      EXPECT_EQ(sp->duration, std::get<SpiralFor>(b).duration);
    }
  }
}

TEST(LowMemUniform, StillFindsTreasureSmallScale) {
  // Constant-factor penalty, not correctness loss: at k = 8, D = 16 the
  // low-memory agents must still find the treasure reliably within a
  // generous (but finite) budget.
  const LowMemUniformStrategy strategy(0.5);
  sim::RunConfig config;
  config.trials = 150;
  config.seed = 2024;
  config.time_cap = 1 << 18;
  const sim::RunStats rs =
      sim::run_trials(strategy, 8, 16, sim::uniform_ring_placement(), config);
  EXPECT_GT(rs.success_rate, 0.9);
}

TEST(LowMemUniform, CompetitivenessWithinConstantOfExact) {
  // The ablation claim at test scale: lowmem phi / exact phi bounded by a
  // modest constant (the counter's variance and the 2x mean shift).
  const LowMemUniformStrategy lowmem(0.5);
  const UniformStrategy exact(0.5);
  sim::RunConfig config;
  config.trials = 120;
  config.seed = 99;
  config.time_cap = 1 << 20;
  const sim::RunStats rs_low = sim::run_trials(
      lowmem, 8, 24, sim::uniform_ring_placement(), config);
  const sim::RunStats rs_exact = sim::run_trials(
      exact, 8, 24, sim::uniform_ring_placement(), config);
  EXPECT_GT(rs_low.success_rate, 0.95);
  EXPECT_GT(rs_exact.success_rate, 0.95);
  EXPECT_LT(rs_low.median_competitiveness,
            8.0 * rs_exact.median_competitiveness);
}

// ---------------------------------------------------------------------------
// Low-memory harmonic strategy.
// ---------------------------------------------------------------------------

TEST(LowMemHarmonic, RejectsNonPositiveDelta) {
  EXPECT_THROW(LowMemHarmonicStrategy(0.0), std::invalid_argument);
  EXPECT_THROW(LowMemHarmonicStrategy(-1.0), std::invalid_argument);
}

TEST(LowMemHarmonic, ScaleContinueProbabilityIsTwoToMinusDelta) {
  EXPECT_NEAR(LowMemHarmonicStrategy(1.0).scale_continue_probability(), 0.5,
              1e-12);
  EXPECT_NEAR(LowMemHarmonicStrategy(0.5).scale_continue_probability(),
              std::exp2(-0.5), 1e-12);
}

TEST(LowMemHarmonic, TripRadiiFollowDyadicPowerLaw) {
  // P(scale >= l) = 2^(-delta l): with delta = 1, half the trips should be
  // scale 0 (radius ~1), a quarter scale 1, ... Check the empirical
  // frequency of radius >= 8 (scale >= 3) is near 2^-3.
  const LowMemHarmonicStrategy strategy(1.0);
  rng::Rng rng(321);
  const auto program = strategy.make_program(sim::AgentContext{});
  const int n = 6000;
  int far = 0;
  for (int i = 0; i < n; ++i) {
    const Op go = program->next(rng);
    const std::int64_t r = grid::l1_norm(std::get<GoTo>(go).target);
    // Scale >= 3 has counter mean 2^3; use radius >= 4 as its signature
    // (counter/2 has mean ~2^l, halves below are possible but rare).
    far += (r >= 4);
    (void)program->next(rng);
    (void)program->next(rng);
  }
  const double frac = static_cast<double>(far) / n;
  // P(scale >= 3) = 1/8; the counter spreads mass across neighboring
  // octaves, so accept a generous band around it.
  EXPECT_GT(frac, 0.04);
  EXPECT_LT(frac, 0.35);
}

TEST(LowMemHarmonic, SpiralBudgetScalesLikeRadiusPower) {
  // For trips that went far, the spiral budget must be large: check the
  // correlation sign by comparing mean budgets of near vs far trips.
  const LowMemHarmonicStrategy strategy(0.5);
  rng::Rng rng(654);
  const auto program = strategy.make_program(sim::AgentContext{});
  double near_sum = 0, far_sum = 0;
  int near_n = 0, far_n = 0;
  for (int i = 0; i < 8000; ++i) {
    const Op go = program->next(rng);
    const std::int64_t r = grid::l1_norm(std::get<GoTo>(go).target);
    const Op sp = program->next(rng);
    const auto t = static_cast<double>(std::get<SpiralFor>(sp).duration);
    (void)program->next(rng);
    if (r <= 2) {
      near_sum += t;
      ++near_n;
    } else if (r >= 8) {
      far_sum += t;
      ++far_n;
    }
  }
  ASSERT_GT(near_n, 100);
  ASSERT_GT(far_n, 20);
  EXPECT_GT(far_sum / far_n, 4.0 * (near_sum / near_n));
}

TEST(LowMemHarmonic, FindsTreasureWithLargeColony) {
  // Theorem 5.1 shape survives the coin-flip arithmetic: with k large
  // relative to D^delta, success within O(D + D^(2+delta)/k) stays high.
  const LowMemHarmonicStrategy strategy(0.5);
  sim::RunConfig config;
  config.trials = 150;
  config.seed = 31337;
  const std::int64_t d = 16;
  config.time_cap = 400 * d;
  const sim::RunStats rs = sim::run_trials(
      strategy, 64, d, sim::uniform_ring_placement(), config);
  EXPECT_GT(rs.success_rate, 0.8);
}

}  // namespace
}  // namespace ants::core
