#include "grid/staircase_path.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <tuple>
#include <vector>

#include "rng/rng.h"

namespace ants::grid {
namespace {

void check_path_invariants(Point a, Point b) {
  const StaircasePath path(a, b);
  ASSERT_EQ(path.length(), l1_dist(a, b));
  ASSERT_EQ(path.at(0), a);
  ASSERT_EQ(path.at(path.length()), b);

  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  Point prev = a;
  for (std::int64_t t = 0; t <= path.length(); ++t) {
    const Point p = path.at(t);
    if (t > 0) {
      ASSERT_TRUE(adjacent(prev, p))
          << "jump at t=" << t << " from (" << prev.x << "," << prev.y
          << ") to (" << p.x << "," << p.y << ")";
    }
    ASSERT_TRUE(seen.insert({p.x, p.y}).second) << "revisit at t=" << t;
    // index_of must invert at().
    const auto idx = path.index_of(p);
    ASSERT_TRUE(idx.has_value());
    ASSERT_EQ(*idx, t);
    prev = p;
  }
}

TEST(Staircase, AxisAlignedPaths) {
  check_path_invariants({0, 0}, {10, 0});
  check_path_invariants({0, 0}, {-10, 0});
  check_path_invariants({0, 0}, {0, 10});
  check_path_invariants({0, 0}, {0, -10});
  check_path_invariants({5, 5}, {5, 5});  // degenerate zero-length
}

TEST(Staircase, DiagonalPaths) {
  check_path_invariants({0, 0}, {7, 7});
  check_path_invariants({0, 0}, {-7, 7});
  check_path_invariants({3, -2}, {-4, 5});
}

TEST(Staircase, SkewedPaths) {
  check_path_invariants({0, 0}, {13, 3});
  check_path_invariants({0, 0}, {3, 13});
  check_path_invariants({0, 0}, {-13, 2});
  check_path_invariants({0, 0}, {1, -17});
  check_path_invariants({100, -50}, {-3, 11});
}

TEST(Staircase, ZeroLengthPath) {
  const StaircasePath path({4, 4}, {4, 4});
  EXPECT_EQ(path.length(), 0);
  EXPECT_EQ(path.at(0), (Point{4, 4}));
  EXPECT_EQ(path.index_of({4, 4}).value(), 0);
  EXPECT_FALSE(path.index_of({4, 5}).has_value());
}

TEST(Staircase, OffPathPointsRejected) {
  const StaircasePath path({0, 0}, {10, 4});
  // Outside bounding box:
  EXPECT_FALSE(path.index_of({-1, 0}).has_value());
  EXPECT_FALSE(path.index_of({11, 4}).has_value());
  EXPECT_FALSE(path.index_of({5, 5}).has_value());
  EXPECT_FALSE(path.index_of({5, -1}).has_value());
  // Inside the box but off the staircase: count how many box points are on
  // the path — must be exactly length+1.
  std::int64_t on = 0;
  for (std::int64_t x = 0; x <= 10; ++x) {
    for (std::int64_t y = 0; y <= 4; ++y) {
      on += path.index_of({x, y}).has_value() ? 1 : 0;
    }
  }
  EXPECT_EQ(on, path.length() + 1);
}

TEST(Staircase, StaysWithinHalfCellOfEuclideanSegment) {
  // The digital line property: at every step, |y * dx - x * dy| <= max(dx,dy).
  const Point b{17, 5};
  const StaircasePath path({0, 0}, b);
  for (std::int64_t t = 0; t <= path.length(); ++t) {
    const Point p = path.at(t);
    EXPECT_LE(std::abs(p.y * b.x - p.x * b.y), std::max(b.x, b.y)) << t;
  }
}

TEST(Staircase, LongPathMembershipIsExact) {
  // O(1) membership on a path far too long to materialize.
  const Point far{std::int64_t{1} << 40, (std::int64_t{1} << 40) + 12345};
  const StaircasePath path({0, 0}, far);
  EXPECT_EQ(path.length(), l1_norm(far));
  EXPECT_EQ(path.index_of({0, 0}).value(), 0);
  EXPECT_EQ(path.index_of(far).value(), path.length());
  // A midpoint that the digital line passes through:
  const Point mid = path.at(path.length() / 2);
  EXPECT_EQ(path.index_of(mid).value(), path.length() / 2);
  EXPECT_FALSE(path.index_of({far.x, 0}).has_value() &&
               far.y != 0);  // corner of the bounding box, not on the line
}

struct RandomPathCase {
  std::uint64_t seed;
};

class StaircasePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StaircasePropertyTest, RandomEndpointsKeepInvariants) {
  rng::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int iter = 0; iter < 50; ++iter) {
    const Point a{rng.uniform_int(-60, 60), rng.uniform_int(-60, 60)};
    const Point b{rng.uniform_int(-60, 60), rng.uniform_int(-60, 60)};
    check_path_invariants(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaircasePropertyTest, ::testing::Range(0, 8));

TEST(Staircase, ReverseVisitsSameNodeSet) {
  // A digital segment is a set of cells: traversing it b -> a must cover
  // exactly the cells of a -> b (the path is anchored at a canonical
  // endpoint, so the midpoint tie-break cannot mirror under reversal).
  rng::Rng rng(4242);
  for (int iter = 0; iter < 200; ++iter) {
    const Point a{rng.uniform_int(-40, 40), rng.uniform_int(-40, 40)};
    const Point b{rng.uniform_int(-40, 40), rng.uniform_int(-40, 40)};
    const StaircasePath fwd(a, b), rev(b, a);
    ASSERT_EQ(fwd.length(), rev.length());
    std::set<std::pair<std::int64_t, std::int64_t>> f, r;
    for (std::int64_t t = 0; t <= fwd.length(); ++t) {
      const Point pf = fwd.at(t), pr = rev.at(t);
      f.insert({pf.x, pf.y});
      r.insert({pr.x, pr.y});
    }
    ASSERT_EQ(f, r) << "a=(" << a.x << "," << a.y << ") b=(" << b.x << ","
                    << b.y << ")";
    // Reversal also flips visit times: rev.at(t) == fwd.at(len - t).
    for (std::int64_t t = 0; t <= fwd.length(); ++t) {
      ASSERT_EQ(rev.at(t), fwd.at(fwd.length() - t));
    }
  }
}

}  // namespace
}  // namespace ants::grid
