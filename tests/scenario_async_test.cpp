// Async/crash and placement-sweep behavior of the scenario layer:
//
//   * conformance — the async trial runner with a zero-delay schedule and no
//     crashes reproduces sim::run_trials exactly, and sweep cells equal the
//     matching sim::run_*_trials call at the cell's derived seed (cell seeds
//     stay strategy-independent across the async path);
//   * determinism — 1-vs-N-thread byte-identical rendered rows for an
//     async/crash spec and a placement-sweep spec;
//   * cache — async aggregates round-trip the per-cell cache byte-for-byte,
//     and a changed crash= field misses it;
//   * progress — per-cell reporting never changes output rows.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/known_k.h"
#include "plane/strategies.h"
#include "rng/splitmix64.h"
#include "scenario/environment.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "sim/placement.h"
#include "sim/runner.h"
#include "sim/trial.h"
#include "util/format.h"

namespace ants::scenario {
namespace {

/// Captures emitted rows in memory, rendered as CSV-ish lines.
class StringSink final : public ResultSink {
 public:
  void begin(const std::vector<std::string>& columns) override {
    lines_.push_back(join(columns));
  }
  void row(const std::vector<std::string>& cells) override {
    lines_.push_back(join(cells));
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  static std::string join(const std::vector<std::string>& cells) {
    std::string out;
    for (const auto& cell : cells) {
      if (!out.empty()) out += ",";
      out += cell;
    }
    return out;
  }
  std::vector<std::string> lines_;
};

std::vector<std::string> rendered_rows(const ScenarioSpec& spec,
                                       const SweepOptions& opt) {
  StringSink sink;
  std::vector<ResultSink*> sinks = {&sink};
  emit_results(spec, run_sweep(spec, opt), sinks);
  return sink.lines();
}

ScenarioSpec async_spec() {
  ScenarioSpec spec;
  spec.name = "async-test";
  spec.strategies = {"known-k", "harmonic(delta=0.5)"};
  spec.ks = {2, 8};
  spec.distances = {4, 8};
  spec.schedule = "staggered(gap=3)";
  spec.crash = "doa(p=0.25)";
  spec.trials = 12;
  spec.seed = 0xA57C;
  spec.time_cap = 200000;
  spec.columns = {"strategy", "k", "D", "placement", "schedule", "crash",
                  "success", "mean_time", "median_time", "from_last_mean",
                  "from_last_median", "mean_crashed", "survivors",
                  "mean_last_start"};
  return spec;
}

ScenarioSpec placement_spec() {
  ScenarioSpec spec;
  spec.name = "placement-test";
  spec.strategies = {"known-k"};
  spec.ks = {4};
  spec.distances = {8, 16};
  spec.placements = {"axis", "ring-fraction(f=0.25)", "ring"};
  spec.trials = 10;
  spec.seed = 0xFACE;
  spec.columns = {"strategy", "k", "D", "placement", "success", "mean_time",
                  "median_time", "max_time"};
  return spec;
}

// ---------------------------------------------------------------------------
// Conformance: the async path degenerates to the sync path exactly.
// ---------------------------------------------------------------------------

TEST(AsyncConformance, ZeroDelayNoCrashMatchesRunTrials) {
  const core::KnownKStrategy strategy(4);
  const sim::Placement placement = sim::uniform_ring_placement();
  sim::RunConfig config;
  config.trials = 30;
  config.seed = 0xD15EA5E;

  const sim::RunStats plain =
      sim::run_trials(strategy, 4, 8, placement, config);

  for (const auto* schedule_text : {"sync", "staggered(gap=0)"}) {
    SCOPED_TRACE(schedule_text);
    const auto schedule = make_schedule(schedule_text);
    const auto crashes = make_crash("none");
    const sim::AsyncRunStats async = sim::run_async_trials(
        strategy, 4, 8, placement, *schedule, *crashes, config);

    EXPECT_EQ(async.base.times, plain.times);
    EXPECT_DOUBLE_EQ(async.base.time.mean, plain.time.mean);
    EXPECT_DOUBLE_EQ(async.base.success_rate, plain.success_rate);
    EXPECT_DOUBLE_EQ(async.base.mean_competitiveness,
                     plain.mean_competitiveness);
    EXPECT_DOUBLE_EQ(async.mean_crashed, 0.0);
    EXPECT_DOUBLE_EQ(async.mean_last_start, 0.0);
  }
}

// Each async sweep cell must equal a standalone sim::run_async_trials at the
// cell's derived seed — and that seed must not depend on the strategy, so
// paired instances survive the async path.
TEST(AsyncConformance, SweepCellMatchesRunAsyncTrials) {
  ScenarioSpec spec = async_spec();
  const std::vector<CellResult> results = run_sweep(spec);
  const std::vector<Cell> cells = flatten(spec);
  ASSERT_EQ(results.size(), 2u * 2u * 2u);

  // Strategy-independent cell seeds: cells 0..3 (known-k) pair with cells
  // 4..7 (harmonic) at the same (k, D).
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cells[i].seed, cells[i + 4].seed);
  }

  const core::KnownKStrategy strategy(2);  // cell 0: k=2, D=4
  sim::RunConfig config;
  config.trials = spec.trials;
  config.seed = results[0].cell.seed;
  config.time_cap = spec.time_cap;
  const auto schedule = make_schedule(spec.schedule);
  const auto crashes = make_crash(spec.crash);
  const sim::AsyncRunStats direct = sim::run_async_trials(
      strategy, 2, 4, sim::uniform_ring_placement(), *schedule, *crashes,
      config);

  EXPECT_EQ(results[0].stats.times, direct.base.times);
  EXPECT_DOUBLE_EQ(results[0].stats.time.mean, direct.base.time.mean);
  EXPECT_DOUBLE_EQ(results[0].from_last_start.mean,
                   direct.from_last_start.mean);
  EXPECT_DOUBLE_EQ(results[0].from_last_start.median,
                   direct.from_last_start.median);
  EXPECT_DOUBLE_EQ(results[0].mean_crashed, direct.mean_crashed);
  EXPECT_DOUBLE_EQ(results[0].mean_last_start, direct.mean_last_start);
}

// Step-level cells under schedule/crash equal the unified runner at the
// cell seed — the engine-family gap the executor merge closed.
TEST(AsyncConformance, StepAsyncCellMatchesRunEnvTrials) {
  ScenarioSpec spec;
  spec.strategies = {"random-walk"};
  spec.ks = {3};
  spec.distances = {2};
  spec.schedule = "staggered(gap=4)";
  spec.crash = "doa(p=0.25)";
  spec.trials = 12;
  spec.seed = 4242;
  spec.time_cap = 5000;

  const std::vector<CellResult> results = run_sweep(spec);
  ASSERT_EQ(results.size(), 1u);

  const BuiltStrategy built =
      Registry::instance().make("random-walk", BuildContext{3});
  sim::TrialStrategy strategy;
  strategy.step = built.step.get();
  sim::RunConfig config;
  config.trials = spec.trials;
  config.seed = results[0].cell.seed;
  config.time_cap = spec.time_cap;
  const auto schedule = make_schedule(spec.schedule);
  const auto crashes = make_crash(spec.crash);
  const sim::AsyncRunStats direct = sim::run_env_trials(
      strategy, 3, 2, sim::single_target(sim::uniform_ring_placement()),
      *schedule, *crashes, config);

  EXPECT_EQ(results[0].stats.times, direct.base.times);
  EXPECT_DOUBLE_EQ(results[0].from_last_start.mean,
                   direct.from_last_start.mean);
  EXPECT_DOUBLE_EQ(results[0].mean_crashed, direct.mean_crashed);
  EXPECT_DOUBLE_EQ(results[0].mean_last_start, direct.mean_last_start);
  // Some trials crash under doa(p=0.25), and the schedule is visible.
  EXPECT_DOUBLE_EQ(results[0].mean_last_start, 8.0);  // (3-1)*gap
}

// Step-level async specs are thread-count independent like every other
// combination.
// Plane-level cells under schedule/crash/targets equal the unified runner
// at the cell seed — the LAST engine-family gap, closed by the plane
// backend of sim::run_trial.
TEST(AsyncConformance, PlaneAsyncCellMatchesRunEnvTrials) {
  ScenarioSpec spec;
  spec.strategies = {"plane-known-k"};
  spec.ks = {2};
  spec.distances = {8};
  spec.schedule = "staggered(gap=2)";
  spec.crash = "doa(p=0.25)";
  spec.targets = {"pair(near=0.25)"};
  spec.trials = 12;
  spec.seed = 424;
  spec.time_cap = 100000;
  const std::vector<CellResult> results = run_sweep(spec);
  ASSERT_EQ(results.size(), 1u);

  const plane::PlaneKnownKStrategy strategy(2);
  sim::TrialStrategy ts;
  ts.plane = &strategy;
  sim::RunConfig config;
  config.trials = spec.trials;
  config.seed = results[0].cell.seed;
  config.time_cap = spec.time_cap;
  const auto schedule = make_schedule(spec.schedule);
  const auto crashes = make_crash(spec.crash);
  const sim::AsyncRunStats direct = sim::run_env_trials(
      ts, 2, 8,
      make_plane_targets(spec.targets[0], make_plane_angle("ring")),
      *schedule, *crashes, config);

  EXPECT_EQ(results[0].stats.times, direct.base.times);
  EXPECT_DOUBLE_EQ(results[0].stats.time.mean, direct.base.time.mean);
  EXPECT_DOUBLE_EQ(results[0].from_last_start.mean,
                   direct.from_last_start.mean);
  EXPECT_DOUBLE_EQ(results[0].mean_crashed, direct.mean_crashed);
  EXPECT_DOUBLE_EQ(results[0].mean_last_start, direct.mean_last_start);
  EXPECT_DOUBLE_EQ(results[0].mean_first_target, direct.mean_first_target);
}

// Crash-at-time-zero on the plane: every agent is dead on arrival in every
// trial, and the rendered async columns must still be finite (no NaN from
// a 0/0, no division by zero in the from_last aggregates).
TEST(AsyncSweep, PlaneAllAgentsDeadRendersFiniteColumns) {
  ScenarioSpec spec;
  spec.name = "plane-all-dead";
  spec.strategies = {"plane-known-k"};
  spec.ks = {3};
  spec.distances = {8};
  spec.crash = "fixed-life(t=0)";
  spec.trials = 6;
  spec.seed = 11;
  spec.time_cap = 5000;
  spec.columns = {"success", "mean_time", "from_last_mean",
                  "from_last_median", "mean_crashed", "survivors",
                  "first_target"};
  const std::vector<std::string> rows = rendered_rows(spec, SweepOptions{});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], "0.0000,5000,5000,5000,3,0,-1");
  EXPECT_EQ(rows[1].find("nan"), std::string::npos);
  EXPECT_EQ(rows[1].find("inf"), std::string::npos);
}

// The rendered mean_crashed/survivors columns match an independent scalar
// recompute: replay the sweep's per-trial draw through sim::run_trial (the
// scalar executor, NOT the batch runner the sweep routes through) and
// format the aggregate the way the sink does. This pins the crash columns
// end-to-end — cell seed derivation, environment draw, batch-vs-scalar
// execution, and CSV formatting — under a DOA-heavy crash model where the
// origin-target/DOA accounting is exercised hard.
TEST(AsyncSweep, CrashColumnsMatchScalarRecomputeAtCsvLevel) {
  ScenarioSpec spec;
  spec.name = "crash-columns";
  spec.strategies = {"known-k"};
  spec.ks = {5};
  spec.distances = {4};
  spec.schedule = "staggered(gap=2)";
  spec.crash = "doa(p=0.6)";
  spec.trials = 16;
  spec.seed = 0xC7A54;
  spec.time_cap = 200000;
  spec.columns = {"mean_crashed", "survivors"};

  const std::vector<Cell> cells = flatten(spec);
  ASSERT_EQ(cells.size(), 1u);

  const core::KnownKStrategy strategy(5);
  const auto schedule = make_schedule(spec.schedule);
  const auto crashes = make_crash(spec.crash);
  sim::EngineConfig config;
  config.time_cap = spec.time_cap;
  const sim::TargetProcess process =
      sim::single_target(sim::uniform_ring_placement());
  double crashed_sum = 0.0;
  for (std::size_t t = 0; t < static_cast<std::size_t>(spec.trials); ++t) {
    rng::Rng trial_rng(rng::mix_seed(cells[0].seed, t));
    sim::TrialEnvironment env;
    process.grid(trial_rng, 4, config.time_cap, &env);
    env = sim::draw_environment(5, std::move(env), *schedule, *crashes,
                                trial_rng);
    const sim::TrialResult r = sim::run_trial(strategy, 5, env, trial_rng,
                                              config);
    crashed_sum += static_cast<double>(r.crashed);
  }
  const double mean_crashed =
      crashed_sum / static_cast<double>(spec.trials);
  ASSERT_GT(mean_crashed, 0.0);  // the crash model actually bites

  const std::vector<std::string> rows = rendered_rows(spec, SweepOptions{});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], util::fmt_compact(mean_crashed) + "," +
                         util::fmt_compact(5.0 - mean_crashed));
}

TEST(AsyncSweep, StepAsyncOutputIdenticalForOneAndManyThreads) {
  ScenarioSpec spec;
  spec.name = "step-async-test";
  spec.strategies = {"random-walk", "known-k"};
  spec.ks = {2, 4};
  spec.distances = {2, 4};
  spec.schedule = "staggered(gap=2)";
  spec.crash = "doa(p=0.25)";
  spec.trials = 10;
  spec.seed = 0x57E9;
  spec.time_cap = 20000;
  spec.columns = {"strategy", "k", "D", "schedule", "crash", "success",
                  "mean_time", "from_last_mean", "mean_crashed", "survivors"};
  SweepOptions one_thread;
  one_thread.threads = 1;
  SweepOptions many_threads;
  many_threads.threads = 7;
  EXPECT_EQ(rendered_rows(spec, one_thread),
            rendered_rows(spec, many_threads));
}

// Step-level cells equal sim::run_step_trials at the cell seed (the runner
// the registry prescribes for that family).
TEST(AsyncConformance, StepCellMatchesRunStepTrials) {
  ScenarioSpec spec;
  spec.strategies = {"random-walk"};
  spec.ks = {3};
  spec.distances = {4};
  spec.trials = 10;
  spec.seed = 42;
  spec.time_cap = 20000;

  const std::vector<CellResult> results = run_sweep(spec);
  ASSERT_EQ(results.size(), 1u);

  const BuiltStrategy built =
      Registry::instance().make("random-walk", BuildContext{3});
  sim::RunConfig config;
  config.trials = spec.trials;
  config.seed = results[0].cell.seed;
  config.time_cap = spec.time_cap;
  const sim::RunStats direct = sim::run_step_trials(
      *built.step, 3, 4, sim::uniform_ring_placement(), config);
  EXPECT_EQ(results[0].stats.times, direct.times);
  EXPECT_DOUBLE_EQ(results[0].stats.success_rate, direct.success_rate);
}

// ---------------------------------------------------------------------------
// Thread-count independence for the new axes (acceptance criterion).
// ---------------------------------------------------------------------------

TEST(AsyncSweep, OutputIdenticalForOneAndManyThreads) {
  const ScenarioSpec spec = async_spec();
  SweepOptions one_thread;
  one_thread.threads = 1;
  SweepOptions many_threads;
  many_threads.threads = 7;
  EXPECT_EQ(rendered_rows(spec, one_thread),
            rendered_rows(spec, many_threads));
}

TEST(PlacementSweep, OutputIdenticalForOneAndManyThreads) {
  const ScenarioSpec spec = placement_spec();
  SweepOptions one_thread;
  one_thread.threads = 1;
  SweepOptions many_threads;
  many_threads.threads = 7;
  EXPECT_EQ(rendered_rows(spec, one_thread),
            rendered_rows(spec, many_threads));
}

// ---------------------------------------------------------------------------
// Placement as a sweep axis.
// ---------------------------------------------------------------------------

TEST(PlacementSweep, FlattenMakesPlacementTheInnermostAxis) {
  const ScenarioSpec spec = placement_spec();
  const std::vector<Cell> cells = flatten(spec);
  ASSERT_EQ(cells.size(), 1u * 1u * 2u * 3u);
  EXPECT_EQ(cells[0].placement_spec, "axis");
  EXPECT_EQ(cells[1].placement_spec, "ring-fraction(f=0.25)");
  EXPECT_EQ(cells[2].placement_spec, "ring");
  EXPECT_EQ(cells[0].distance, 8);
  EXPECT_EQ(cells[3].distance, 16);
  // Placement does not perturb the cell seed (placements are probed on the
  // same trial randomness) but does discriminate the cache hash.
  EXPECT_EQ(cells[0].seed, cells[1].seed);
  EXPECT_NE(cells[0].hash, cells[1].hash);
}

TEST(PlacementSweep, PinnedFractionBeatsOrMatchesAxisForPinnedTreasure) {
  // Sanity: the axis and ring-fraction(f=0) placements pin the same node,
  // so identical seeds must give identical results.
  ScenarioSpec spec;
  spec.strategies = {"known-k"};
  spec.ks = {2};
  spec.distances = {8};
  spec.placements = {"axis", "ring-fraction(f=0)"};
  spec.trials = 8;
  spec.seed = 7;
  const std::vector<CellResult> results = run_sweep(spec);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stats.times, results[1].stats.times);
}

// ---------------------------------------------------------------------------
// Targets as a sweep axis.
// ---------------------------------------------------------------------------

ScenarioSpec targets_spec() {
  ScenarioSpec spec;
  spec.name = "targets-test";
  spec.strategies = {"known-k"};
  spec.ks = {4};
  spec.distances = {8};
  spec.targets = {"single", "pair(near=0.25)", "ring-set(n=3)"};
  spec.trials = 12;
  spec.seed = 0x7A36E7;
  spec.time_cap = 200000;
  spec.columns = {"strategy", "k", "D", "targets", "success", "mean_time",
                  "first_target"};
  return spec;
}

TEST(TargetsSweep, FlattenMakesTargetsTheInnermostAxis) {
  ScenarioSpec spec = targets_spec();
  spec.placements = {"axis", "ring"};
  const std::vector<Cell> cells = flatten(spec);
  ASSERT_EQ(cells.size(), 1u * 1u * 1u * 2u * 3u);
  EXPECT_EQ(cells[0].placement_spec, "axis");
  EXPECT_EQ(cells[0].targets_spec, "single");
  EXPECT_EQ(cells[1].targets_spec, "pair(near=0.25)");
  EXPECT_EQ(cells[2].targets_spec, "ring-set(n=3)");
  EXPECT_EQ(cells[3].placement_spec, "ring");
  // The target policy does not perturb the cell seed (paired instances)
  // but does discriminate the cache hash.
  EXPECT_EQ(cells[0].seed, cells[1].seed);
  EXPECT_NE(cells[0].hash, cells[1].hash);
}

TEST(TargetsSweep, NearPatchWinsTheForagingRace) {
  const std::vector<CellResult> results = run_sweep(targets_spec());
  ASSERT_EQ(results.size(), 3u);
  // single: every found trial "wins" with target 0.
  EXPECT_DOUBLE_EQ(results[0].mean_first_target, 0.0);
  // pair(near=0.25): the near patch (index 0) should win nearly always, so
  // the mean index stays close to 0; the race also ends much earlier than
  // the single hunt at distance D.
  EXPECT_LT(results[1].mean_first_target, 0.3);
  EXPECT_GE(results[1].mean_first_target, 0.0);
  EXPECT_LT(results[1].stats.time.mean, results[0].stats.time.mean);
  // ring-set(n=3): all targets at distance D; the mean winning index sits
  // somewhere strictly inside [0, 2].
  EXPECT_GE(results[2].mean_first_target, 0.0);
  EXPECT_LE(results[2].mean_first_target, 2.0);
}

TEST(TargetsSweep, OutputIdenticalForOneAndManyThreads) {
  const ScenarioSpec spec = targets_spec();
  SweepOptions one_thread;
  one_thread.threads = 1;
  SweepOptions many_threads;
  many_threads.threads = 7;
  EXPECT_EQ(rendered_rows(spec, one_thread),
            rendered_rows(spec, many_threads));
}

TEST(TargetsSweep, SingleTargetsLeaveBaseModelRowsUntouched) {
  // targets=single must be byte-identical to a spec that never mentions
  // targets at all (the default), for every column of the default set.
  ScenarioSpec base;
  base.strategies = {"known-k", "uniform(eps=0.5)"};
  base.ks = {2, 4};
  base.distances = {8};
  base.trials = 10;
  base.seed = 99;
  ScenarioSpec with_field = base;
  with_field.targets = {"single"};
  EXPECT_EQ(rendered_rows(base, SweepOptions{}),
            rendered_rows(with_field, SweepOptions{}));
}

TEST(TargetsSweep, CacheDiscriminatesTargetsField) {
  ScenarioSpec spec = targets_spec();
  SweepOptions opt;
  opt.cache_dir = ::testing::TempDir() + "ants_targets_cache_test";
  std::filesystem::remove_all(opt.cache_dir);

  const auto cold_rows = rendered_rows(spec, opt);
  const std::vector<CellResult> warm = run_sweep(spec, opt);
  for (const CellResult& r : warm) EXPECT_TRUE(r.from_cache);
  // mean_first_target round-trips the cache byte-for-byte.
  EXPECT_EQ(rendered_rows(spec, opt), cold_rows);

  ScenarioSpec changed = targets_spec();
  changed.targets = {"pair(near=0.5)"};
  for (const CellResult& r : run_sweep(changed, opt)) {
    EXPECT_FALSE(r.from_cache);
  }
}

// ---------------------------------------------------------------------------
// Cache round-trip for the new columns (satellite).
// ---------------------------------------------------------------------------

TEST(AsyncSweep, CacheRoundTripsAsyncColumnsByteForByte) {
  ScenarioSpec spec = async_spec();
  SweepOptions opt;
  opt.cache_dir = ::testing::TempDir() + "ants_async_cache_test";
  std::filesystem::remove_all(opt.cache_dir);

  const auto cold_rows = rendered_rows(spec, opt);
  const std::vector<CellResult> warm = run_sweep(spec, opt);
  for (const CellResult& r : warm) EXPECT_TRUE(r.from_cache);
  EXPECT_EQ(rendered_rows(spec, opt), cold_rows);

  // A changed crash= field misses the cache.
  spec.crash = "doa(p=0.5)";
  for (const CellResult& r : run_sweep(spec, opt)) {
    EXPECT_FALSE(r.from_cache);
  }
  // So does a changed schedule= field.
  ScenarioSpec resched = async_spec();
  resched.schedule = "staggered(gap=4)";
  for (const CellResult& r : run_sweep(resched, opt)) {
    EXPECT_FALSE(r.from_cache);
  }
  // And a changed placement.
  ScenarioSpec moved = async_spec();
  moved.placements = {"axis"};
  for (const CellResult& r : run_sweep(moved, opt)) {
    EXPECT_FALSE(r.from_cache);
  }
}

// ---------------------------------------------------------------------------
// Progress reporting (satellite): rows unaffected, lines per cell.
// ---------------------------------------------------------------------------

TEST(Progress, ReportingDoesNotChangeOutputRows) {
  const ScenarioSpec spec = placement_spec();
  const auto quiet_rows = rendered_rows(spec, SweepOptions{});

  std::ostringstream progress;
  SweepOptions opt;
  opt.progress = true;
  opt.progress_stream = &progress;
  opt.threads = 3;
  EXPECT_EQ(rendered_rows(spec, opt), quiet_rows);

  // One completion line per cell, each naming the spec.
  const std::string text = progress.str();
  std::size_t lines = 0;
  for (const char ch : text) lines += ch == '\n';
  EXPECT_EQ(lines, flatten(spec).size());
  EXPECT_NE(text.find("placement-test"), std::string::npos);
  EXPECT_NE(text.find("done"), std::string::npos);
}

TEST(Progress, CachedCellsReportAsCached) {
  const ScenarioSpec spec = placement_spec();
  SweepOptions opt;
  opt.cache_dir = ::testing::TempDir() + "ants_progress_cache_test";
  std::filesystem::remove_all(opt.cache_dir);
  (void)run_sweep(spec, opt);  // populate

  std::ostringstream progress;
  opt.progress = true;
  opt.progress_stream = &progress;
  (void)run_sweep(spec, opt);
  EXPECT_NE(progress.str().find("cached"), std::string::npos);
}

}  // namespace
}  // namespace ants::scenario
