// The target-process API (sim::TargetProcess): per-trial objects owning
// target state over TIME — static draws as the trivial process, Poisson
// arrival/lifetime windows, drifting targets, and dwell capture — plus the
// scenario-layer surface built on top (cache keys, cached aggregates).
//
// Contracts pinned here:
//   * static processes are byte-identical to the direct environment draws
//     they replaced (same rng stream, same draw order, same results);
//   * dynamic processes draw exclusively from the target child stream, so
//     enabling them never perturbs the trial rng's main stream;
//   * zero-spawn Poisson realizations are legitimate trials, not validation
//     errors, on every backend and in both collect modes;
//   * dwell capture requires held contact and resets on leaving the disc or
//     on the target vanishing mid-dwell;
//   * the batch executor runs every grid dynamic environment natively in its
//     SoA path, byte-identical to the scalar reference at every forced SIMD
//     level and with zero scalar delegations; plane windowed/collect cells
//     are the one remaining fallback, and each delegation is counted;
//   * capture/collect are part of the scenario cell cache key, and the new
//     target aggregates survive a cache round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "baselines/random_walk.h"
#include "core/known_k.h"
#include "plane/strategies.h"
#include "rng/splitmix64.h"
#include "scenario/plan.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"
#include "sim/batch/batch.h"
#include "sim/batch/simd.h"
#include "sim/placement.h"
#include "sim/trial.h"

namespace ants {
namespace {

using grid::Point;
using sim::EngineConfig;
using sim::Time;
using sim::TrialEnvironment;
using sim::TrialResult;

/// Deterministic stepper marching east forever (enters the L1 disc of an
/// on-axis target one tick before standing on it — the dwell test fixture).
class EastStrategy final : public sim::StepStrategy {
 public:
  std::string name() const override { return "east"; }
  std::unique_ptr<sim::StepProgram> make_program(
      sim::AgentContext) const override {
    class P final : public sim::StepProgram {
      Point step(rng::Rng&, Point current) override {
        return current + Point{1, 0};
      }
    };
    return std::make_unique<P>();
  }
};

/// Oscillates between (1,0) and (0,0): touches the L1 disc of a target at
/// (2,0) every other tick but never holds contact two ticks in a row.
class OscillateStrategy final : public sim::StepStrategy {
 public:
  std::string name() const override { return "oscillate"; }
  std::unique_ptr<sim::StepProgram> make_program(
      sim::AgentContext) const override {
    class P final : public sim::StepProgram {
      Point step(rng::Rng&, Point current) override {
        return current == Point{0, 0} ? Point{1, 0} : Point{0, 0};
      }
    };
    return std::make_unique<P>();
  }
};

void expect_same_result(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.finder, b.finder);
  EXPECT_EQ(a.first_target, b.first_target);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.last_start, b.last_start);
  EXPECT_EQ(a.from_last_start, b.from_last_start);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.target_times, b.target_times);
}

// ---------------------------------------------------------------------------
// Static processes: the trivial process is byte-identical to direct draws.
// ---------------------------------------------------------------------------

TEST(TargetProcess, StaticGridProcessMatchesDirectDraw) {
  const sim::TargetProcess process =
      sim::single_target(sim::uniform_ring_placement());
  const sim::Placement direct = sim::uniform_ring_placement();
  for (std::uint64_t seed : {1ULL, 42ULL, 999ULL}) {
    rng::Rng process_rng(seed);
    rng::Rng direct_rng(seed);
    TrialEnvironment via_process;
    process.grid(process_rng, 7, 1000, &via_process);
    const Point direct_draw = direct(direct_rng, 7);
    ASSERT_EQ(via_process.targets.size(), 1u);
    EXPECT_EQ(via_process.targets[0], direct_draw);
    // Both consumed the same number of main-stream draws.
    EXPECT_EQ(process_rng.bits(), direct_rng.bits());
    // And the realized environment runs identically to the hand-built one.
    const core::KnownKStrategy known(3);
    EngineConfig config;
    config.time_cap = 100000;
    TrialEnvironment direct_env;
    direct_env.targets = {direct_draw};
    expect_same_result(
        run_trial(known, 3, via_process, rng::Rng(seed * 31), config),
        run_trial(known, 3, direct_env, rng::Rng(seed * 31), config));
  }
}

TEST(TargetProcess, StaticPlaneProcessMatchesDirectDraw) {
  const sim::TargetProcess process =
      sim::single_plane_target([](rng::Rng& rng) { return rng.angle(); });
  for (std::uint64_t seed : {7ULL, 1234ULL}) {
    rng::Rng process_rng(seed);
    rng::Rng direct_rng(seed);
    TrialEnvironment via_process;
    process.plane(process_rng, 12, 1000, &via_process);
    const plane::Vec2 direct_draw =
        plane::unit(direct_rng.angle()) * 12.0;
    ASSERT_EQ(via_process.plane_targets.size(), 1u);
    EXPECT_EQ(via_process.plane_targets[0].x, direct_draw.x);
    EXPECT_EQ(via_process.plane_targets[0].y, direct_draw.y);
    EXPECT_EQ(process_rng.bits(), direct_rng.bits());
  }
}

// ---------------------------------------------------------------------------
// Poisson processes: determinism, stream isolation, realization shape.
// ---------------------------------------------------------------------------

TEST(TargetProcess, PoissonRealizationIsDeterministic) {
  const sim::TargetProcess process =
      sim::poisson_targets(0.05, 100.0, sim::uniform_ring_placement());
  TrialEnvironment a, b;
  rng::Rng rng_a(2024), rng_b(2024);
  process.grid(rng_a, 5, 2000, &a);
  process.grid(rng_b, 5, 2000, &b);
  EXPECT_EQ(a.targets, b.targets);
  EXPECT_EQ(a.target_appear, b.target_appear);
  EXPECT_EQ(a.target_vanish, b.target_vanish);
  EXPECT_TRUE(a.windowed);
}

TEST(TargetProcess, PoissonDrawsOnlyFromTargetStream) {
  // Realizing a Poisson process must not advance the trial rng's main
  // stream: the next main-stream draw equals an untouched twin's.
  const sim::TargetProcess process =
      sim::poisson_targets(0.02, 0.0, sim::uniform_ring_placement());
  rng::Rng realized(777), untouched(777);
  TrialEnvironment env;
  process.grid(realized, 4, 5000, &env);
  EXPECT_EQ(realized.bits(), untouched.bits());
}

TEST(TargetProcess, PoissonRealizationShape) {
  const sim::TargetProcess process =
      sim::poisson_targets(0.05, 100.0, sim::uniform_ring_placement());
  TrialEnvironment env;
  rng::Rng rng(99);
  const Time cap = 2000;
  process.grid(rng, 6, cap, &env);
  ASSERT_GT(env.targets.size(), 0u);
  ASSERT_EQ(env.target_appear.size(), env.targets.size());
  ASSERT_EQ(env.target_vanish.size(), env.targets.size());
  double prev = 0.0;
  for (std::size_t ti = 0; ti < env.targets.size(); ++ti) {
    EXPECT_GT(env.target_appear[ti], prev);
    EXPECT_LE(env.target_appear[ti], static_cast<double>(cap));
    EXPECT_GT(env.target_vanish[ti], env.target_appear[ti]);
    prev = env.target_appear[ti];
  }
}

TEST(TargetProcess, PoissonImmortalLifetimes) {
  const sim::TargetProcess process =
      sim::poisson_targets(0.05, 0.0, sim::uniform_ring_placement());
  TrialEnvironment env;
  rng::Rng rng(99);
  process.grid(rng, 6, 2000, &env);
  ASSERT_GT(env.targets.size(), 0u);
  for (const double vanish : env.target_vanish) {
    EXPECT_TRUE(std::isinf(vanish));
  }
}

TEST(TargetProcess, PoissonRequiresFiniteHorizon) {
  const sim::TargetProcess process =
      sim::poisson_targets(0.05, 0.0, sim::uniform_ring_placement());
  TrialEnvironment env;
  rng::Rng rng(1);
  EXPECT_THROW(process.grid(rng, 4, sim::kNeverTime, &env),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Zero-spawn realizations: legitimate trials, not validation errors.
// ---------------------------------------------------------------------------

TEST(TargetProcess, ZeroSpawnPoissonIsNotAnError) {
  // A rate this low realizes zero arrivals over the horizon for any seed
  // whose first exponential draw exceeds it — pinned by the fixed seed.
  const sim::TargetProcess process =
      sim::poisson_targets(1e-12, 0.0, sim::uniform_ring_placement());
  TrialEnvironment env;
  rng::Rng rng(5);
  process.grid(rng, 4, 100, &env);
  ASSERT_TRUE(env.targets.empty());
  EXPECT_TRUE(env.windowed);
  EXPECT_TRUE(env.has_target_windows());

  const baselines::RandomWalkStrategy rw;
  EngineConfig config;
  config.time_cap = 100;

  // First-of-set mode: nothing to find; the trial runs out the cap and the
  // walker's cost accounting still happens (one edge per tick).
  const TrialResult first = run_trial(rw, 2, env, rng::Rng(17), config);
  EXPECT_FALSE(first.found);
  EXPECT_EQ(first.time, 100.0);
  EXPECT_EQ(first.segments, 200);

  // Collect-all mode: vacuously complete at t = 0.
  TrialEnvironment collect_env = env;
  collect_env.collect_all = true;
  const TrialResult all = run_trial(rw, 2, collect_env, rng::Rng(17), config);
  EXPECT_TRUE(all.found);
  EXPECT_EQ(all.time, 0.0);
  EXPECT_TRUE(all.target_times.empty());
}

TEST(TargetProcess, ZeroSpawnSegmentAndPlaneBackends) {
  EngineConfig config;
  config.time_cap = 50;

  TrialEnvironment grid_env;
  grid_env.windowed = true;
  const core::KnownKStrategy known(2);
  const TrialResult seg = run_trial(known, 2, grid_env, rng::Rng(3), config);
  EXPECT_FALSE(seg.found);
  EXPECT_EQ(seg.time, 50.0);

  TrialEnvironment plane_env;
  plane_env.windowed = true;
  const plane::PlaneKnownKStrategy plane_known(2);
  const TrialResult pl =
      run_trial(plane_known, 2, plane_env, rng::Rng(3), config);
  EXPECT_FALSE(pl.found);
  EXPECT_EQ(pl.time, 50.0);
}

// ---------------------------------------------------------------------------
// Dwell capture: held contact confirms, losing contact resets.
// ---------------------------------------------------------------------------

TEST(TargetProcess, DwellCaptureConfirmsAfterHeldContact) {
  // East walker: in the L1 disc of (2,0) from t = 1 on (positions 1, 2, 3).
  // dwell=2 needs three consecutive contact ticks, so capture lands at t=3.
  const EastStrategy east;
  TrialEnvironment env;
  env.targets = {Point{2, 0}};
  env.capture_dwell = 2;
  EngineConfig config;
  config.time_cap = 100;
  const TrialResult r = run_trial(east, 1, env, rng::Rng(1), config);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 3.0);
  EXPECT_EQ(r.finder, 0);

  // Instant capture on the same walk finds it at t = 2 (exact node).
  env.capture_dwell = 0;
  const TrialResult instant = run_trial(east, 1, env, rng::Rng(1), config);
  EXPECT_TRUE(instant.found);
  EXPECT_EQ(instant.time, 2.0);
}

TEST(TargetProcess, DwellResetsWhenAgentLeavesDisc) {
  // The oscillator touches the disc of (2,0) at (1,0) on odd ticks and
  // leaves it on even ticks: contact never holds, so dwell never confirms.
  const OscillateStrategy osc;
  TrialEnvironment env;
  env.targets = {Point{2, 0}};
  env.capture_dwell = 1;
  EngineConfig config;
  config.time_cap = 200;
  const TrialResult r = run_trial(osc, 1, env, rng::Rng(1), config);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.time, 200.0);
}

TEST(TargetProcess, DwellResetsWhenTargetVanishesMidDwell) {
  // The east walker holds contact from t = 1, needing t = 3 to confirm at
  // dwell=2 — but the target vanishes at 2.5, wiping the held progress.
  const EastStrategy east;
  TrialEnvironment env;
  env.targets = {Point{2, 0}};
  env.target_appear = {0.0};
  env.target_vanish = {2.5};
  env.capture_dwell = 2;
  EngineConfig config;
  config.time_cap = 100;
  const TrialResult gone = run_trial(east, 1, env, rng::Rng(1), config);
  EXPECT_FALSE(gone.found);

  // Control: the same trial with a late vanish confirms at t = 3.
  env.target_vanish = {1000.0};
  const TrialResult held = run_trial(east, 1, env, rng::Rng(1), config);
  EXPECT_TRUE(held.found);
  EXPECT_EQ(held.time, 3.0);
}

// ---------------------------------------------------------------------------
// Drifting targets.
// ---------------------------------------------------------------------------

TEST(TargetProcess, DriftingTargetInterceptedHeadOn) {
  // Base (4,0) drifting at 1 cell/tick toward -x (angle 0.5 turns); the
  // east walker at (t,0) meets it where t = 4 - t, i.e. t = 2.
  const sim::TargetProcess process =
      sim::drifting_target(1.0, 0.5, sim::axis_placement());
  TrialEnvironment env;
  rng::Rng rng(11);
  process.grid(rng, 4, 100, &env);
  ASSERT_EQ(env.targets.size(), 1u);
  ASSERT_EQ(env.target_drift.size(), 1u);
  EXPECT_EQ(env.targets[0], (Point{4, 0}));

  const EastStrategy east;
  EngineConfig config;
  config.time_cap = 100;
  const TrialResult r = run_trial(east, 1, env, rng::Rng(2), config);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 2.0);
}

TEST(TargetProcess, DriftRequiresStepStrategy) {
  TrialEnvironment env;
  env.targets = {Point{4, 0}};
  env.target_drift = {sim::TargetDrift{1.0, 0.0}};
  const core::KnownKStrategy known(2);
  EngineConfig config;
  config.time_cap = 100;
  EXPECT_THROW(run_trial(known, 2, env, rng::Rng(1), config),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Collect-all: per-target discovery times and time-to-all-found.
// ---------------------------------------------------------------------------

TEST(TargetProcess, CollectAllRecordsPerTargetTimes) {
  const EastStrategy east;
  TrialEnvironment env;
  env.targets = {Point{2, 0}, Point{5, 0}};
  env.collect_all = true;
  EngineConfig config;
  config.time_cap = 100;
  const TrialResult r = run_trial(east, 1, env, rng::Rng(1), config);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 5.0);  // time-to-ALL-found
  ASSERT_EQ(r.target_times.size(), 2u);
  EXPECT_EQ(r.target_times[0], 2.0);
  EXPECT_EQ(r.target_times[1], 5.0);
  EXPECT_EQ(r.first_target, 0);
}

TEST(TargetProcess, CollectAllCensorsUnfoundTargets) {
  const EastStrategy east;
  TrialEnvironment env;
  env.targets = {Point{2, 0}, Point{0, 50}};  // the east walker never turns
  env.collect_all = true;
  EngineConfig config;
  config.time_cap = 30;
  const TrialResult r = run_trial(east, 1, env, rng::Rng(1), config);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.time, 30.0);
  ASSERT_EQ(r.target_times.size(), 2u);
  EXPECT_EQ(r.target_times[0], 2.0);
  EXPECT_EQ(r.target_times[1], -1.0);
}

// ---------------------------------------------------------------------------
// Batch executor: grid dynamic environments run natively in the batch SoA
// path — byte-identical to the scalar reference at every forced SIMD level,
// with the fallback counter pinned at zero so the tests fail if routing ever
// regresses to delegation. Plane dynamic cells are the one remaining
// (counted) delegation.
// ---------------------------------------------------------------------------

class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(sim::batch::active_simd_level()) {}
  ~SimdLevelGuard() { sim::batch::force_simd_level(saved_); }

 private:
  sim::batch::SimdLevel saved_;
};

TEST(TargetProcess, BatchRunnerMatchesScalarOnDynamicEnvs) {
  using sim::batch::SimdLevel;
  const baselines::RandomWalkStrategy rw;
  const core::KnownKStrategy known(3);

  // Each seed realizes fresh environments from the trial seed, so sixteen
  // seeds sweep zero-spawn, mid-trial appearance, vanish-before-found, and
  // multi-target realizations across every dynamic axis pairing.
  const sim::TargetProcess poisson =
      sim::poisson_targets(0.02, 300.0, sim::uniform_ring_placement());
  const sim::TargetProcess drift =
      sim::drifting_target(0.5, 0.125, sim::uniform_ring_placement());

  EngineConfig config;
  config.time_cap = 400;

  SimdLevelGuard guard;
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2}) {
    sim::batch::force_simd_level(level);
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      const rng::Rng trial_rng(rng::mix_seed(0xD15EA5E, seed));
      const auto realize = [&](const sim::TargetProcess& process) {
        TrialEnvironment env;
        rng::Rng realize_rng(trial_rng.seed());
        process.grid(realize_rng, 3, config.time_cap, &env);
        return env;
      };

      // Step backend: windows, drift, dwell, collect-all, and pairings.
      std::vector<TrialEnvironment> step_envs;
      step_envs.push_back(realize(poisson));
      step_envs.push_back(realize(poisson));
      step_envs.back().capture_dwell = 1;
      step_envs.push_back(realize(poisson));
      step_envs.back().collect_all = true;
      step_envs.push_back(realize(drift));
      step_envs.push_back(realize(drift));
      step_envs.back().capture_dwell = 2;
      step_envs.push_back(realize(drift));
      step_envs.back().collect_all = true;
      for (const TrialEnvironment& env : step_envs) {
        sim::TrialStrategy s;
        s.step = &rw;
        sim::batch::BatchRunner runner(s, 2, config);
        expect_same_result(runner.run_one(env, trial_rng),
                           run_trial(rw, 2, env, trial_rng, config));
        // The batch path must actually run: grid cells never delegate.
        EXPECT_EQ(runner.take_scalar_fallbacks(), 0u);
      }

      // Segment backend: windows first-of-set and windows + collect-all.
      for (const bool collect : {false, true}) {
        TrialEnvironment env = realize(poisson);
        env.collect_all = collect;
        sim::TrialStrategy s;
        s.segment = &known;
        sim::batch::BatchRunner runner(s, 3, config);
        expect_same_result(runner.run_one(env, trial_rng),
                           run_trial(known, 3, env, trial_rng, config));
        EXPECT_EQ(runner.take_scalar_fallbacks(), 0u);
      }
    }
  }
}

TEST(TargetProcess, BatchRunnerCountsPlaneDynamicDelegation) {
  using sim::batch::SimdLevel;
  const plane::PlaneKnownKStrategy plane_known(3);
  const sim::TargetProcess plane_poisson = sim::poisson_plane_targets(
      0.02, 300.0, [](rng::Rng& rng) { return rng.angle(); });
  EngineConfig config;
  config.time_cap = 400;

  SimdLevelGuard guard;
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2}) {
    sim::batch::force_simd_level(level);
    sim::TrialStrategy s;
    s.plane = &plane_known;
    sim::batch::BatchRunner runner(s, 2, config);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const rng::Rng trial_rng(rng::mix_seed(0xFA11BAC, seed));
      TrialEnvironment env;
      rng::Rng realize_rng(trial_rng.seed());
      plane_poisson.plane(realize_rng, 3, config.time_cap, &env);
      expect_same_result(runner.run_one(env, trial_rng),
                         run_trial(plane_known, 2, env, trial_rng, config));
    }
    // Each dynamic plane trial is a counted delegation; take drains.
    EXPECT_EQ(runner.take_scalar_fallbacks(), 4u);
    EXPECT_EQ(runner.take_scalar_fallbacks(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Scenario layer: cache keys and cached aggregates.
// ---------------------------------------------------------------------------

scenario::ScenarioSpec small_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "target-process-test";
  spec.strategies = {"random-walk"};
  spec.ks = {2};
  spec.distances = {2};
  spec.trials = 4;
  spec.seed = 51;
  spec.time_cap = 300;
  return spec;
}

TEST(TargetProcess, CaptureAndCollectAreCacheKeyAxes) {
  const scenario::ScenarioSpec base = small_spec();
  scenario::ScenarioSpec dwell = base;
  dwell.capture = "dwell(t=1)";
  scenario::ScenarioSpec all = base;
  all.collect = "all";

  const std::uint64_t base_hash = scenario::flatten(base)[0].hash;
  const std::uint64_t dwell_hash = scenario::flatten(dwell)[0].hash;
  const std::uint64_t all_hash = scenario::flatten(all)[0].hash;
  EXPECT_NE(base_hash, dwell_hash);
  EXPECT_NE(base_hash, all_hash);
  EXPECT_NE(dwell_hash, all_hash);

  // Equivalent spellings of the same capture policy key identically.
  scenario::ScenarioSpec dwell_spaced = base;
  dwell_spaced.capture = "dwell( t = 1 )";
  EXPECT_EQ(dwell_hash, scenario::flatten(dwell_spaced)[0].hash);
}

TEST(TargetProcess, TargetAggregatesSurviveCacheRoundTrip) {
  scenario::ScenarioSpec spec = small_spec();
  spec.targets = {"poisson(rate=0.05, life=200)"};
  spec.capture = "dwell(t=1)";
  spec.collect = "all";

  const std::string cache_dir =
      ::testing::TempDir() + "ants_target_process_cache";
  std::filesystem::remove_all(cache_dir);
  scenario::SweepOptions opt;
  opt.threads = 1;
  opt.cache_dir = cache_dir;

  const std::vector<scenario::CellResult> first = run_sweep(spec, opt);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_FALSE(first[0].from_cache);

  const std::vector<scenario::CellResult> second = run_sweep(spec, opt);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].from_cache);

  EXPECT_EQ(first[0].stats.time.mean, second[0].stats.time.mean);
  EXPECT_EQ(first[0].mean_targets_found, second[0].mean_targets_found);
  EXPECT_EQ(first[0].mean_targets_spawned, second[0].mean_targets_spawned);
  EXPECT_EQ(first[0].found_before_vanish, second[0].found_before_vanish);
  for (std::size_t j = 0; j < scenario::CellResult::kTargetTimeSlots; ++j) {
    EXPECT_EQ(first[0].target_time_mean[j], second[0].target_time_mean[j]);
  }
  // The spec spawned targets somewhere across the cell's trials, so the
  // aggregates are live numbers, not the -1 inert markers.
  EXPECT_GE(first[0].mean_targets_spawned, 0.0);
  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace ants
