#include "plane/strategies.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <variant>

#include "core/uniform.h"
#include "plane/engine.h"
#include "rng/rng.h"

namespace ants::plane {
namespace {

// ---------------------------------------------------------------------------
// PlaneKnownK.
// ---------------------------------------------------------------------------

TEST(PlaneKnownK, RejectsBadK) {
  EXPECT_THROW(PlaneKnownKStrategy(0), std::invalid_argument);
  EXPECT_NO_THROW(PlaneKnownKStrategy(1));
}

TEST(PlaneKnownK, ScheduleMatchesGridAk) {
  // Disk radius 2^i and sweep budget 2^(2i+2)/k — the grid schedule's
  // closed forms carried over verbatim.
  const PlaneKnownKStrategy s(4);
  for (int i = 1; i <= 20; ++i) {
    EXPECT_DOUBLE_EQ(s.disk_radius(i), std::ldexp(1.0, i));
    EXPECT_DOUBLE_EQ(s.sweep_budget(i), std::ldexp(1.0, 2 * i + 2) / 4.0);
  }
}

TEST(PlaneKnownK, TripsStayInPhaseDisk) {
  const PlaneKnownKStrategy s(2);
  const auto program = s.make_program(0, 2);
  rng::Rng rng(11);
  const double radii[] = {2, 2, 4, 2, 4, 8};
  for (const double r : radii) {
    const PlaneOp go = program->next(rng);
    ASSERT_TRUE(std::holds_alternative<GoToPoint>(go));
    EXPECT_LE(std::get<GoToPoint>(go).target.norm(), r + 1e-9);
    (void)program->next(rng);
    (void)program->next(rng);
  }
}

// ---------------------------------------------------------------------------
// PlaneHarmonic.
// ---------------------------------------------------------------------------

TEST(PlaneHarmonic, RejectsNonPositiveDelta) {
  EXPECT_THROW(PlaneHarmonicStrategy(0.0), std::invalid_argument);
  EXPECT_NO_THROW(PlaneHarmonicStrategy(0.5));
}

TEST(PlaneHarmonic, TripRadiiAreParetoTail) {
  // P(R > r) = r^-delta for the Pareto(1, delta) radial draw: check the
  // empirical survival at r = 4 for delta = 1 (expected 1/4).
  const PlaneHarmonicStrategy s(1.0);
  const auto program = s.make_program(0, 1);
  rng::Rng rng(22);
  int beyond = 0;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    const PlaneOp go = program->next(rng);
    beyond += (std::get<GoToPoint>(go).target.norm() > 4.0);
    (void)program->next(rng);
    (void)program->next(rng);
  }
  EXPECT_NEAR(static_cast<double>(beyond) / n, 0.25, 0.03);
}

TEST(PlaneHarmonic, SweepBudgetIsRadiusPower) {
  const PlaneHarmonicStrategy s(0.5);
  const auto program = s.make_program(0, 1);
  rng::Rng rng(33);
  for (int trip = 0; trip < 200; ++trip) {
    const PlaneOp go = program->next(rng);
    const double r = std::get<GoToPoint>(go).target.norm();
    const PlaneOp sweep = program->next(rng);
    const double budget = std::get<SpiralSweep>(sweep).duration;
    EXPECT_NEAR(budget, std::min(std::pow(r, 2.5), 1e18), 1e-6 * budget);
    (void)program->next(rng);
  }
}

// ---------------------------------------------------------------------------
// PlaneUniform.
// ---------------------------------------------------------------------------

TEST(PlaneUniform, RejectsNegativeEps) {
  EXPECT_THROW(PlaneUniformStrategy(-0.5), std::invalid_argument);
  EXPECT_NO_THROW(PlaneUniformStrategy(0.0));
}

TEST(PlaneUniform, ClosedFormsMatchGridUniform) {
  // The grid UniformStrategy computes the same D_ij and t_ij (integerized);
  // the plane version must agree within rounding.
  const PlaneUniformStrategy plane_s(0.4);
  const core::UniformStrategy grid_s(0.4);
  for (int i = 0; i <= 18; ++i) {
    for (int j = 0; j <= i; ++j) {
      const auto grid_r = static_cast<double>(grid_s.ball_radius(i, j));
      EXPECT_NEAR(plane_s.disk_radius(i, j), grid_r, 1.0 + 0.01 * grid_r)
          << i << "," << j;
      const auto grid_t = static_cast<double>(grid_s.spiral_budget(i, j));
      EXPECT_NEAR(plane_s.sweep_budget(i, j), grid_t, 1.0 + 0.01 * grid_t)
          << i << "," << j;
    }
  }
}

TEST(PlaneUniform, IsUniformIgnoresK) {
  const PlaneUniformStrategy s(0.5);
  const auto p0 = s.make_program(0, 1);
  const auto p1 = s.make_program(7, 9999);
  rng::Rng r0(44), r1(44);
  for (int i = 0; i < 36; ++i) {
    const PlaneOp a = p0->next(r0);
    const PlaneOp b = p1->next(r1);
    ASSERT_EQ(a.index(), b.index());
    if (const auto* go = std::get_if<GoToPoint>(&a)) {
      EXPECT_EQ(go->target, std::get<GoToPoint>(b).target);
    } else if (const auto* sw = std::get_if<SpiralSweep>(&a)) {
      EXPECT_EQ(sw->duration, std::get<SpiralSweep>(b).duration);
    }
  }
}

TEST(PlaneUniform, FindsTreasureSmallScale) {
  const PlaneUniformStrategy s(0.5);
  int found = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    const rng::Rng trial(static_cast<std::uint64_t>(t) * 131 + 7);
    rng::Rng placement = trial.child(0xFACADE);
    const Vec2 treasure = unit(placement.angle()) * 12.0;
    PlaneEngineConfig config;
    config.time_cap = 1 << 20;
    const auto r = run_plane_search(s, 4, treasure, trial, config);
    found += r.found;
  }
  EXPECT_GT(static_cast<double>(found) / trials, 0.9);
}

// ---------------------------------------------------------------------------
// Pitch/coverage property sweep (TEST_P): any pitch <= 2*eps leaves no
// blind ring, so a long-enough sweep must sight every target within reach.
// ---------------------------------------------------------------------------

class PitchCoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(PitchCoverageTest, SweepSightsEverythingWithinReach) {
  const double pitch = GetParam();
  const double eps = 1.0;
  const SpiralMove sp{{0, 0}, pitch, 3000.0};
  const double a = pitch / 6.283185307179586;
  const double theta_end = spiral_theta_for_arc(a, sp.duration);
  const double reach = a * theta_end - pitch - eps;  // margin of one coil
  rng::Rng rng(1234 + static_cast<std::uint64_t>(pitch * 100));
  for (int iter = 0; iter < 60; ++iter) {
    const double r = rng.uniform_real(0.0, reach);
    const Vec2 target = unit(rng.angle()) * r;
    EXPECT_TRUE(first_sighting(Move{sp}, target, eps).has_value())
        << "pitch=" << pitch << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Pitches, PitchCoverageTest,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace ants::plane
