#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "grid/ball.h"
#include "grid/ring.h"
#include "rng/rng.h"

namespace ants::grid {
namespace {

TEST(Ring, SizeFormula) {
  EXPECT_EQ(ring_size(0), 1);
  EXPECT_EQ(ring_size(1), 4);
  EXPECT_EQ(ring_size(5), 20);
  EXPECT_EQ(ring_size(1000), 4000);
}

TEST(Ring, PointsLieOnRing) {
  for (std::int64_t r = 1; r <= 40; ++r) {
    for (std::int64_t m = 0; m < ring_size(r); ++m) {
      EXPECT_EQ(l1_norm(ring_point(r, m)), r) << r << "," << m;
    }
  }
}

TEST(Ring, EnumerationIsBijective) {
  for (std::int64_t r = 1; r <= 40; ++r) {
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    for (std::int64_t m = 0; m < ring_size(r); ++m) {
      const Point p = ring_point(r, m);
      seen.insert({p.x, p.y});
    }
    EXPECT_EQ(static_cast<std::int64_t>(seen.size()), ring_size(r)) << r;
  }
}

TEST(Ring, IndexInvertsPoint) {
  for (std::int64_t r = 1; r <= 64; ++r) {
    for (std::int64_t m = 0; m < ring_size(r); ++m) {
      EXPECT_EQ(ring_index(ring_point(r, m)), m) << r << "," << m;
    }
  }
  EXPECT_EQ(ring_index(kOrigin), 0);
}

TEST(Ring, CardinalAnchors) {
  EXPECT_EQ(ring_point(7, 0), (Point{7, 0}));
  EXPECT_EQ(ring_point(7, 7), (Point{0, 7}));
  EXPECT_EQ(ring_point(7, 14), (Point{-7, 0}));
  EXPECT_EQ(ring_point(7, 21), (Point{0, -7}));
}

TEST(Ball, SizeFormula) {
  EXPECT_EQ(ball_size(0), 1);
  EXPECT_EQ(ball_size(1), 5);
  EXPECT_EQ(ball_size(2), 13);
  // |B(r)| = 1 + sum_{q=1..r} 4q.
  std::int64_t acc = 1;
  for (std::int64_t r = 1; r <= 200; ++r) {
    acc += 4 * r;
    EXPECT_EQ(ball_size(r), acc) << r;
  }
}

TEST(Ball, RadiusForIndexExactSweep) {
  std::int64_t expected_radius = 0;
  for (std::int64_t idx = 0; idx < ball_size(60); ++idx) {
    if (idx >= ball_size(expected_radius)) ++expected_radius;
    ASSERT_EQ(ball_radius_for_index(idx), expected_radius) << idx;
  }
}

TEST(Ball, PointIndexBijection) {
  const std::int64_t r = 25;
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (std::int64_t idx = 0; idx < ball_size(r); ++idx) {
    const Point p = ball_point(r, idx);
    EXPECT_LE(l1_norm(p), r);
    EXPECT_EQ(ball_index(p), idx);
    seen.insert({p.x, p.y});
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), ball_size(r));
}

TEST(Ball, EnumerationOrderedByRadius) {
  std::int64_t prev_radius = 0;
  for (std::int64_t idx = 0; idx < ball_size(30); ++idx) {
    const std::int64_t radius = l1_norm(ball_point(30, idx));
    EXPECT_GE(radius, prev_radius);
    prev_radius = radius;
  }
}

class BallSamplingTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BallSamplingTest, UniformOverBall) {
  const std::int64_t r = GetParam();
  rng::Rng rng(2024 + static_cast<std::uint64_t>(r));
  const std::int64_t cells = ball_size(r);
  const int per_cell = 200;
  const int n = static_cast<int>(cells) * per_cell;
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < n; ++i) {
    const Point p = uniform_ball_point(rng, r);
    ASSERT_LE(l1_norm(p), r);
    ++counts[ball_index(p)];
  }
  // Every cell hit, and no cell wildly off the per_cell expectation
  // (5-sigma with sigma ~ sqrt(per_cell)).
  EXPECT_EQ(static_cast<std::int64_t>(counts.size()), cells);
  for (const auto& [idx, c] : counts) {
    EXPECT_NEAR(c, per_cell, 5 * 15) << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, BallSamplingTest,
                         ::testing::Values<std::int64_t>(1, 2, 5, 9));

TEST(BallSampling, RingSamplerStaysOnRing) {
  rng::Rng rng(77);
  for (std::int64_t r : {1, 3, 17, 1000}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_EQ(l1_norm(uniform_ring_point(rng, r)), r);
    }
  }
  EXPECT_EQ(uniform_ring_point(rng, 0), kOrigin);
}

TEST(BallSampling, LargeRadiusDoesNotOverflow) {
  rng::Rng rng(78);
  const std::int64_t r = std::int64_t{1} << 30;
  for (int i = 0; i < 100; ++i) {
    const Point p = uniform_ball_point(rng, r);
    EXPECT_LE(l1_norm(p), r);
  }
}

}  // namespace
}  // namespace ants::grid
