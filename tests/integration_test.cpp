// Small-scale statistical reproductions of the paper's claims, with
// generous tolerances so they are deterministic-in-practice under the fixed
// seeds. The full-scale versions live in bench/exp_* (E1-E8).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/random_walk.h"
#include "baselines/sector_sweep.h"
#include "baselines/spiral_single.h"
#include "core/approx_k.h"
#include "core/harmonic.h"
#include "core/known_k.h"
#include "core/uniform.h"
#include "sim/metrics.h"
#include "sim/runner.h"

namespace ants {
namespace {

sim::RunConfig quick_config(std::int64_t trials, std::uint64_t seed,
                            sim::Time cap = sim::kNeverTime) {
  sim::RunConfig config;
  config.trials = trials;
  config.seed = seed;
  config.time_cap = cap;
  return config;
}

TEST(Integration, KnownKIsConstantCompetitiveAcrossKAndD) {
  // Theorem 3.1: phi should stay bounded by a constant as k and D vary.
  double max_phi = 0;
  for (const std::int64_t d : {8, 16, 32}) {
    for (const int k : {1, 4, 16}) {
      const core::KnownKStrategy strategy(k);
      const auto rs = sim::run_trials(strategy, k, d,
                                      sim::uniform_ring_placement(),
                                      quick_config(100, 1234));
      EXPECT_EQ(rs.success_rate, 1.0);
      max_phi = std::max(max_phi, rs.mean_competitiveness);
    }
  }
  // The constant is ~10-20 with our spiral constants; 60 is a safe ceiling
  // that would still catch any super-constant growth at these scales.
  EXPECT_LT(max_phi, 60.0);
}

TEST(Integration, KnownKBeatsSingleAgentByNearK) {
  // Speed-up sanity: k = 16 agents should be at least 4x faster than one
  // agent at D = 32 (ideal would be ~16x on the D^2 term).
  const std::int64_t d = 32;
  const core::KnownKStrategy s1(1);
  const core::KnownKStrategy s16(16);
  const auto r1 = sim::run_trials(s1, 1, d, sim::uniform_ring_placement(),
                                  quick_config(80, 7));
  const auto r16 = sim::run_trials(s16, 16, d, sim::uniform_ring_placement(),
                                   quick_config(80, 7));
  EXPECT_GT(sim::speedup(r1.time.mean, r16.time.mean), 4.0);
}

TEST(Integration, ApproxKPenaltyBoundedByRhoSquared) {
  // Corollary 3.2: under-estimates inflate time by <= rho^2 (asymptotically);
  // allow slack for constants at small scale.
  const std::int64_t d = 16;
  const int k = 8;
  const auto exact = sim::run_trials(core::KnownKStrategy(k), k, d,
                                     sim::uniform_ring_placement(),
                                     quick_config(150, 9));
  const auto rho2 = sim::run_trials(
      core::ApproxKStrategy(k, 2.0, core::ApproxMode::kUnder), k, d,
      sim::uniform_ring_placement(), quick_config(150, 9));
  EXPECT_LT(rho2.time.mean, 8.0 * exact.time.mean);
}

TEST(Integration, UniformCompetitivenessGrowsSlowly) {
  // Theorem 3.3 flavor: phi(k) for A_uniform(0.5) grows, but by far less
  // than linearly in k: phi(64)/phi(1) should be well under 64.
  const std::int64_t d = 24;
  const core::UniformStrategy strategy(0.5);
  const auto r1 = sim::run_trials(strategy, 1, d,
                                  sim::uniform_ring_placement(),
                                  quick_config(60, 11));
  const auto r64 = sim::run_trials(strategy, 64, d,
                                   sim::uniform_ring_placement(),
                                   quick_config(60, 11));
  EXPECT_EQ(r64.success_rate, 1.0);
  const double growth =
      r64.mean_competitiveness / r1.mean_competitiveness;
  EXPECT_LT(growth, 24.0);
  // And the uniform algorithm pays SOMETHING relative to known-k.
  const auto known = sim::run_trials(core::KnownKStrategy(64), 64, d,
                                     sim::uniform_ring_placement(),
                                     quick_config(60, 11));
  EXPECT_GT(r64.time.mean, known.time.mean);
}

TEST(Integration, HarmonicSucceedsInTheoremRegime) {
  // Theorem 5.1 regime k > alpha D^delta: high success within the
  // O(D + D^(2+delta)/k) budget (x32 constant slack).
  const double delta = 0.5;
  const std::int64_t d = 16;
  const int k = 64;  // alpha*D^0.5 = 4*alpha; 64 is deep in the regime
  const double budget =
      32.0 * (d + std::pow(static_cast<double>(d), 2.0 + delta) / k);
  const core::HarmonicStrategy strategy(delta);
  const auto rs = sim::run_trials(strategy, k, d,
                                  sim::uniform_ring_placement(),
                                  quick_config(200, 13,
                                               static_cast<sim::Time>(budget)));
  EXPECT_GT(rs.success_rate, 0.9);
}

TEST(Integration, HarmonicDegradesGracefullyBelowRegime) {
  // With k = 1 << alpha D^delta the same budget should fail often — the
  // theorem's condition is not vacuous.
  const double delta = 0.5;
  const std::int64_t d = 16;
  const double budget =
      32.0 * (d + std::pow(static_cast<double>(d), 2.0 + delta) / 64.0);
  const core::HarmonicStrategy strategy(delta);
  const auto rs = sim::run_trials(strategy, 1, d,
                                  sim::uniform_ring_placement(),
                                  quick_config(200, 15,
                                               static_cast<sim::Time>(budget)));
  EXPECT_LT(rs.success_rate, 0.8);
}

TEST(Integration, UniversalLowerBoundHoldsForAllStrategies) {
  // Omega(D + D^2/k): no strategy can beat optimal_time (allowing Monte-
  // Carlo fuzz of a few percent... in fact nothing should even come close).
  const std::int64_t d = 24;
  const int k = 8;
  const double floor_time = 0.5 * sim::optimal_time(d, k);

  const core::KnownKStrategy known(k);
  const baselines::SectorSweepStrategy sweep;
  for (const sim::Strategy* s :
       std::vector<const sim::Strategy*>{&known, &sweep}) {
    const auto rs = sim::run_trials(*s, k, d, sim::uniform_ring_placement(),
                                    quick_config(100, 17));
    EXPECT_GT(rs.time.mean, floor_time) << s->name();
  }
}

TEST(Integration, RandomWalkBlowsUpWithDistance) {
  // The paper's motivation for spiral-based strategies: random-walk search
  // times explode super-quadratically on Z^2 (infinite expectation in the
  // limit). Compare censored means at D=2 vs D=8 with the same cap.
  const baselines::RandomWalkStrategy rw;
  const sim::Time cap = 40000;
  const auto near = sim::run_step_trials(rw, 4, 2, sim::axis_placement(),
                                         quick_config(60, 19, cap));
  const auto far = sim::run_step_trials(rw, 4, 8, sim::axis_placement(),
                                        quick_config(60, 19, cap));
  EXPECT_GT(far.time.mean, 4.0 * near.time.mean);
  EXPECT_LT(far.success_rate, near.success_rate + 0.01);
}

TEST(Integration, SpiralSingleMatchesThetaD2) {
  // Baeza-Yates: single-spiral time ~ 2 D^2 on the ring (hit at the ring's
  // spiral index). Check the D^2 scaling empirically.
  const baselines::SpiralSingleStrategy spiral;
  const auto r8 = sim::run_trials(spiral, 1, 8, sim::uniform_ring_placement(),
                                  quick_config(200, 21));
  const auto r16 = sim::run_trials(spiral, 1, 16,
                                   sim::uniform_ring_placement(),
                                   quick_config(200, 21));
  const double scaling = r16.time.mean / r8.time.mean;
  EXPECT_GT(scaling, 3.0);
  EXPECT_LT(scaling, 5.0);
}

TEST(Integration, SectorSweepNearOptimalDeterministically) {
  const baselines::SectorSweepStrategy sweep;
  for (const int k : {2, 8}) {
    const auto rs = sim::run_trials(sweep, k, 32,
                                    sim::uniform_ring_placement(),
                                    quick_config(60, 23));
    EXPECT_EQ(rs.success_rate, 1.0);
    EXPECT_LT(rs.mean_competitiveness, 30.0) << k;
  }
}

}  // namespace
}  // namespace ants
