#include "grid/point.h"

#include <gtest/gtest.h>

#include <set>

#include "grid/visited_set.h"

namespace ants::grid {
namespace {

TEST(Point, ArithmeticAndComparison) {
  const Point a{3, -2};
  const Point b{-1, 5};
  EXPECT_EQ(a + b, (Point{2, 3}));
  EXPECT_EQ(a - b, (Point{4, -7}));
  EXPECT_EQ(a, (Point{3, -2}));
  EXPECT_NE(a, b);
  EXPECT_EQ(kOrigin, (Point{0, 0}));
}

TEST(Point, L1Norm) {
  EXPECT_EQ(l1_norm({0, 0}), 0);
  EXPECT_EQ(l1_norm({3, 4}), 7);
  EXPECT_EQ(l1_norm({-3, 4}), 7);
  EXPECT_EQ(l1_norm({-3, -4}), 7);
  EXPECT_EQ(l1_dist({1, 1}, {4, 5}), 7);
}

TEST(Point, LinfNorm) {
  EXPECT_EQ(linf_norm({0, 0}), 0);
  EXPECT_EQ(linf_norm({3, 4}), 4);
  EXPECT_EQ(linf_norm({-5, 4}), 5);
  EXPECT_EQ(linf_norm({-5, -5}), 5);
}

TEST(Point, Adjacency) {
  EXPECT_TRUE(adjacent({0, 0}, {1, 0}));
  EXPECT_TRUE(adjacent({0, 0}, {0, -1}));
  EXPECT_FALSE(adjacent({0, 0}, {1, 1}));
  EXPECT_FALSE(adjacent({0, 0}, {0, 0}));
  EXPECT_FALSE(adjacent({0, 0}, {2, 0}));
}

TEST(Point, DirectionsAreTheFourNeighbors) {
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (const Point d : kDirections) {
    EXPECT_EQ(l1_norm(d), 1);
    seen.insert({d.x, d.y});
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Point, PackRoundTripsThroughVisitedSet) {
  VisitedSet set;
  const Point pts[] = {{0, 0}, {1, -1}, {-100000, 99999}, {12345, -54321}};
  for (const Point p : pts) {
    EXPECT_TRUE(set.insert(p));
    EXPECT_FALSE(set.insert(p));  // second insert is a duplicate
    EXPECT_TRUE(set.contains(p));
  }
  EXPECT_EQ(set.size(), 4u);
}

TEST(Point, PackDistinguishesSignCombinations) {
  EXPECT_NE(pack({1, 2}), pack({2, 1}));
  EXPECT_NE(pack({-1, 2}), pack({1, -2}));
  EXPECT_NE(pack({-1, -2}), pack({1, 2}));
}

TEST(VisitedSet, ForEachRecoversPoints) {
  VisitedSet set;
  set.insert({5, -3});
  set.insert({-2, 7});
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  set.for_each([&](Point p) { seen.insert({p.x, p.y}); });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen.count({5, -3}));
  EXPECT_TRUE(seen.count({-2, 7}));
}

TEST(VisitedSet, ClearAndReserve) {
  VisitedSet set;
  set.reserve(100);
  for (int i = 0; i < 50; ++i) set.insert({i, i});
  EXPECT_EQ(set.size(), 50u);
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains({1, 1}));
}

}  // namespace
}  // namespace ants::grid
