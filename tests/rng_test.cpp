#include "rng/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "rng/splitmix64.h"
#include "rng/xoshiro256ss.h"

namespace ants::rng {
namespace {

TEST(SplitMix, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  const std::uint64_t a1 = a();
  EXPECT_EQ(a1, b());
  EXPECT_NE(a1, c());
  EXPECT_NE(a(), a1);  // state advances
}

TEST(SplitMix, KnownVector) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation.
  SplitMix64 sm(1234567);
  const std::uint64_t v0 = sm();
  const std::uint64_t v1 = sm();
  SplitMix64 sm2(1234567);
  EXPECT_EQ(sm2(), v0);
  EXPECT_EQ(sm2(), v1);
  EXPECT_NE(v0, v1);
}

TEST(MixSeed, OrderSensitive) {
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
  EXPECT_EQ(mix_seed(7, 9), mix_seed(7, 9));
  // Nearby indices must not collide.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix_seed(99, i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Xoshiro, JumpChangesStream) {
  Xoshiro256ss a(5), b(5);
  b.jump();
  bool differs = false;
  for (int i = 0; i < 8; ++i) differs |= (a() != b());
  EXPECT_TRUE(differs);
}

TEST(Rng, Reproducible) {
  Rng a(777), b(777);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, ChildStreamsIndependentOfParentState) {
  Rng parent(123);
  const Rng child_before = parent.child(4);
  parent.bits();
  parent.bits();
  Rng child_after = parent.child(4);
  Rng reference = child_before;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(reference.bits(), child_after.bits());
}

TEST(Rng, UniformU64InRange) {
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(rng.uniform_u64(7), 7u);
    EXPECT_EQ(rng.uniform_u64(1), 0u);
  }
}

TEST(Rng, UniformU64Unbiased) {
  // Chi-square-style check over 8 buckets, 80k draws: each bucket expects
  // 10000 +- ~5 sigma (sigma ~ sqrt(10000*7/8) ~ 94).
  Rng rng(2);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 80000; ++i) ++counts[rng.uniform_u64(8)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformUnitInHalfOpenInterval) {
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformPositiveUnitNeverZero) {
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform_positive_unit();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Rng, UniformUnitMeanAndVariance) {
  Rng rng(6);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform_unit();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Rng, Direction4Coverage) {
  Rng rng(7);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) {
    const int d = rng.direction4();
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 4);
    ++counts[d];
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsAndSymmetry) {
  Rng rng(88);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  int negative = 0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum2 += z * z;
    negative += (z < 0);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(static_cast<double>(negative) / n, 0.5, 0.01);
}

TEST(Rng, NormalTailMass) {
  // P(|Z| > 1.96) ~ 0.05 for a standard normal.
  Rng rng(89);
  const int n = 200000;
  int beyond = 0;
  for (int i = 0; i < n; ++i) beyond += (std::abs(rng.normal()) > 1.96);
  EXPECT_NEAR(static_cast<double>(beyond) / n, 0.05, 0.005);
}

TEST(Rng, ParetoTailExponent) {
  // For Pareto(xm=1, alpha): P(X > x) = x^-alpha. Empirical survival at
  // x = 4 should be 4^-1.5 ~ 0.125 for alpha = 1.5.
  Rng rng(9);
  const int n = 200000;
  int beyond = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.pareto(1.0, 1.5);
    EXPECT_GE(v, 1.0);
    if (v > 4.0) ++beyond;
  }
  EXPECT_NEAR(static_cast<double>(beyond) / n, std::pow(4.0, -1.5), 0.01);
}

TEST(Rng, GeometricMean) {
  // Failures before first success with p = 0.25: mean (1-p)/p = 3.
  Rng rng(10);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const std::int64_t v = rng.geometric(0.25);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, AngleRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double a = rng.angle();
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 6.2831854);
  }
}

}  // namespace
}  // namespace ants::rng
