#include "sim/runner.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "baselines/random_walk.h"
#include "sim/metrics.h"
#include "test_support.h"

namespace ants::sim {
namespace {

using ants::testing::ScriptedStrategy;

TEST(Runner, DeterministicAcrossThreadCounts) {
  const ScriptedStrategy strategy({GoTo{{8, 0}}, SpiralFor{64},
                                   ReturnToSource{}});
  RunConfig one;
  one.trials = 64;
  one.seed = 7;
  one.threads = 1;
  one.time_cap = 1 << 16;
  RunConfig many = one;
  many.threads = 8;

  const RunStats a = run_trials(strategy, 2, 6, uniform_ring_placement(), one);
  const RunStats b = run_trials(strategy, 2, 6, uniform_ring_placement(), many);
  ASSERT_EQ(a.times.size(), b.times.size());
  for (std::size_t i = 0; i < a.times.size(); ++i) {
    EXPECT_EQ(a.times[i], b.times[i]) << i;
  }
  EXPECT_EQ(a.success_rate, b.success_rate);
}

TEST(Runner, FixedPlacementDeterministicTimes) {
  // Scripted walk to (5,0): with axis placement at D=5 every trial hits at
  // exactly t=5.
  const ScriptedStrategy strategy({GoTo{{5, 0}}});
  RunConfig config;
  config.trials = 16;
  config.time_cap = 1000;
  const RunStats rs = run_trials(strategy, 1, 5, axis_placement(), config);
  EXPECT_EQ(rs.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(rs.time.mean, 5.0);
  EXPECT_DOUBLE_EQ(rs.time.min, 5.0);
  EXPECT_DOUBLE_EQ(rs.time.max, 5.0);
}

TEST(Runner, CompetitivenessUsesOptimalDenominator) {
  const ScriptedStrategy strategy({GoTo{{5, 0}}});
  RunConfig config;
  config.trials = 8;
  config.time_cap = 1000;
  const RunStats rs = run_trials(strategy, 4, 5, axis_placement(), config);
  EXPECT_DOUBLE_EQ(rs.mean_competitiveness, 5.0 / optimal_time(5, 4));
  EXPECT_EQ(rs.k, 4);
  EXPECT_EQ(rs.distance, 5);
}

TEST(Runner, CensoredTrialsLowerSuccessRate) {
  // Walks to (3,0) then parks in the third quadrant; ring placement puts
  // the treasure elsewhere most trials, which then censor at the cap.
  const ScriptedStrategy strategy({GoTo{{3, 0}}});
  RunConfig config;
  config.trials = 200;
  config.seed = 11;
  config.time_cap = 64;
  const RunStats rs =
      run_trials(strategy, 1, 3, uniform_ring_placement(), config);
  EXPECT_LT(rs.success_rate, 0.5);
  EXPECT_GT(rs.success_rate, 0.0);
  // Censored times equal the cap.
  EXPECT_DOUBLE_EQ(rs.time.max, 64.0);
}

TEST(Runner, Validation) {
  const ScriptedStrategy strategy({GoTo{{1, 0}}});
  RunConfig config;
  config.trials = 0;
  EXPECT_THROW(run_trials(strategy, 1, 5, axis_placement(), config),
               std::invalid_argument);
  config.trials = 4;
  EXPECT_THROW(run_trials(strategy, 1, 0, axis_placement(), config),
               std::invalid_argument);
}

TEST(StepRunner, MirrorsStepEngine) {
  const baselines::RandomWalkStrategy rw;
  RunConfig config;
  config.trials = 32;
  config.seed = 5;
  config.time_cap = 4000;
  const RunStats rs = run_step_trials(rw, 4, 1, axis_placement(), config);
  EXPECT_GT(rs.success_rate, 0.9);
  EXPECT_GT(rs.time.mean, 0.0);
}

TEST(StepRunner, RequiresFiniteCap) {
  const baselines::RandomWalkStrategy rw;
  RunConfig config;
  config.trials = 4;
  EXPECT_THROW(run_step_trials(rw, 1, 2, axis_placement(), config),
               std::invalid_argument);
}

TEST(StepRunner, DeterministicAcrossThreadCounts) {
  const baselines::RandomWalkStrategy rw;
  RunConfig one;
  one.trials = 24;
  one.seed = 3;
  one.threads = 1;
  one.time_cap = 2000;
  RunConfig many = one;
  many.threads = 6;
  const RunStats a = run_step_trials(rw, 2, 2, uniform_ring_placement(), one);
  const RunStats b = run_step_trials(rw, 2, 2, uniform_ring_placement(), many);
  for (std::size_t i = 0; i < a.times.size(); ++i) {
    EXPECT_EQ(a.times[i], b.times[i]) << i;
  }
}

TEST(Placement, Shapes) {
  rng::Rng rng(1);
  EXPECT_EQ(axis_placement()(rng, 9), (grid::Point{9, 0}));
  EXPECT_EQ(diagonal_placement()(rng, 9), (grid::Point{5, 4}));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(grid::l1_norm(uniform_ring_placement()(rng, 13)), 13);
  }
  EXPECT_EQ(grid::l1_norm(ring_fraction_placement(0.5)(rng, 10)), 10);
  EXPECT_EQ(ring_fraction_placement(0.0)(rng, 10), (grid::Point{10, 0}));
}

TEST(Placement, RangeErrorsAreLoud) {
  EXPECT_THROW(ring_fraction_placement(1.5), std::invalid_argument);
  EXPECT_THROW(ring_fraction_placement(-0.1), std::invalid_argument);
}

TEST(Metrics, OptimalTimeAndSpeedup) {
  EXPECT_DOUBLE_EQ(optimal_time(10, 1), 110.0);
  EXPECT_DOUBLE_EQ(optimal_time(10, 100), 11.0);
  EXPECT_DOUBLE_EQ(competitiveness(220.0, 10, 1), 2.0);
  EXPECT_DOUBLE_EQ(speedup(100.0, 25.0), 4.0);
  EXPECT_DOUBLE_EQ(log_power(16, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(log_power(16, 2.0), 16.0);
  EXPECT_DOUBLE_EQ(log_power(1, 1.0), 1.0);  // clamped
}

}  // namespace
}  // namespace ants::sim
