#include "sim/async_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/harmonic.h"
#include "core/known_k.h"
#include "rng/rng.h"
#include "test_support.h"

namespace ants::sim {
namespace {

using testing::PerAgentScriptedStrategy;
using testing::ScriptedStrategy;

// ---------------------------------------------------------------------------
// Schedules and crash models in isolation.
// ---------------------------------------------------------------------------

TEST(StartSchedule, SyncIsAllZero) {
  rng::Rng rng(1);
  const auto d = SyncStart().draw(5, rng);
  EXPECT_EQ(d, (std::vector<Time>{0, 0, 0, 0, 0}));
}

TEST(StartSchedule, StaggeredIsArithmetic) {
  rng::Rng rng(1);
  const auto d = StaggeredStart(7).draw(4, rng);
  EXPECT_EQ(d, (std::vector<Time>{0, 7, 14, 21}));
}

TEST(StartSchedule, StaggeredRejectsNegativeGap) {
  EXPECT_THROW(StaggeredStart(-1), std::invalid_argument);
}

TEST(StartSchedule, UniformRandomWithinRange) {
  rng::Rng rng(99);
  const UniformRandomStart sched(100);
  const auto d = sched.draw(1000, rng);
  EXPECT_EQ(d.size(), 1000u);
  for (const Time t : d) {
    EXPECT_GE(t, 0);
    EXPECT_LE(t, 100);
  }
  // Not all equal (probability of that is astronomically small).
  EXPECT_NE(*std::min_element(d.begin(), d.end()),
            *std::max_element(d.begin(), d.end()));
}

TEST(StartSchedule, UniformRandomZeroMaxDegeneratesToSync) {
  rng::Rng rng(7);
  const auto d = UniformRandomStart(0).draw(16, rng);
  for (const Time t : d) EXPECT_EQ(t, 0);
}

TEST(StartSchedule, FixedValidatesCount) {
  rng::Rng rng(1);
  FixedStart sched({3, 1, 4});
  EXPECT_EQ(sched.draw(3, rng), (std::vector<Time>{3, 1, 4}));
  EXPECT_THROW(sched.draw(2, rng), std::invalid_argument);
}

TEST(StartSchedule, FixedRejectsNegativeDelay) {
  EXPECT_THROW(FixedStart({1, -2}), std::invalid_argument);
}

TEST(CrashModel, NoCrashIsImmortal) {
  rng::Rng rng(1);
  for (const Time l : NoCrash().draw_lifetimes(4, rng)) {
    EXPECT_EQ(l, kNeverTime);
  }
}

TEST(CrashModel, DoaRateMatchesP) {
  rng::Rng rng(1234);
  const DoaCrash model(0.3);
  int dead = 0;
  const int n = 20000;
  const auto lifetimes = model.draw_lifetimes(n, rng);
  for (const Time l : lifetimes) {
    ASSERT_TRUE(l == 0 || l == kNeverTime);
    dead += (l == 0);
  }
  EXPECT_NEAR(static_cast<double>(dead) / n, 0.3, 0.02);
}

TEST(CrashModel, DoaRejectsBadP) {
  EXPECT_THROW(DoaCrash(-0.1), std::invalid_argument);
  EXPECT_THROW(DoaCrash(1.1), std::invalid_argument);
}

TEST(CrashModel, ExponentialMeanIsRight) {
  rng::Rng rng(5678);
  const ExponentialLifetime model(500.0);
  double sum = 0;
  const int n = 20000;
  for (const Time l : model.draw_lifetimes(n, rng)) {
    sum += static_cast<double>(l);
  }
  EXPECT_NEAR(sum / n, 500.0, 25.0);
}

TEST(CrashModel, FixedLifetimeIsConstant) {
  rng::Rng rng(1);
  for (const Time l : FixedLifetime(42).draw_lifetimes(3, rng)) {
    EXPECT_EQ(l, 42);
  }
}

// ---------------------------------------------------------------------------
// Engine equivalence: sync + immortal must reproduce run_search exactly.
// ---------------------------------------------------------------------------

TEST(AsyncEngine, SyncNoCrashMatchesPlainEngineOnPaperStrategies) {
  const core::KnownKStrategy known(8);
  const core::HarmonicStrategy harmonic(0.5);
  const grid::Point treasure{13, -6};
  for (const Strategy* s :
       {static_cast<const Strategy*>(&known),
        static_cast<const Strategy*>(&harmonic)}) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      const rng::Rng trial(seed);
      const SearchResult plain = run_search(*s, 8, treasure, trial);
      const TrialResult async =
          run_search_async(*s, 8, treasure, trial, SyncStart(), NoCrash());
      ASSERT_EQ(async.time, plain.time) << s->name() << " seed " << seed;
      ASSERT_EQ(async.finder, plain.finder);
      ASSERT_EQ(async.found, plain.found);
      ASSERT_EQ(async.from_last_start, plain.time);
      ASSERT_EQ(async.crashed, 0);
    }
  }
}

TEST(AsyncEngine, TreasureAtSourceFoundAtFirstStart) {
  const ScriptedStrategy s({GoTo{grid::Point{5, 5}}});
  const rng::Rng trial(3);
  const auto r = run_search_async(s, 3, grid::kOrigin, trial,
                                  FixedStart({9, 4, 11}), NoCrash());
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 4);  // earliest starter wakes up on the treasure
  EXPECT_EQ(r.finder, 1);
  EXPECT_EQ(r.last_start, 11);
  EXPECT_EQ(r.from_last_start, 0);
}

// ---------------------------------------------------------------------------
// Start delays shift absolute hit times.
// ---------------------------------------------------------------------------

TEST(AsyncEngine, DelayShiftsHitTimeExactly) {
  // One agent walking straight to the treasure at (10, 0): hit at delay + 10.
  const ScriptedStrategy s({GoTo{grid::Point{10, 0}}});
  const rng::Rng trial(7);
  for (const Time delay : {0, 1, 17, 400}) {
    const auto r = run_search_async(s, 1, grid::Point{10, 0}, trial,
                                    FixedStart({delay}), NoCrash());
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.time, delay + 10);
    EXPECT_EQ(r.from_last_start, 10);  // invariant in the agent's own frame
  }
}

TEST(AsyncEngine, EarlierStarterWinsRace) {
  // Both agents walk to (6, 0); agent 1 starts 3 earlier than agent 0.
  const ScriptedStrategy s({GoTo{grid::Point{6, 0}}});
  const rng::Rng trial(11);
  const auto r = run_search_async(s, 2, grid::Point{6, 0}, trial,
                                  FixedStart({3, 0}), NoCrash());
  EXPECT_EQ(r.finder, 1);
  EXPECT_EQ(r.time, 6);
  EXPECT_EQ(r.last_start, 3);
  EXPECT_EQ(r.from_last_start, 3);
}

TEST(AsyncEngine, FromLastStartNeverNegative) {
  // Agent 0 (no delay) finds the treasure before the last agent starts.
  const PerAgentScriptedStrategy s({
      {GoTo{grid::Point{2, 0}}},      // agent 0: finds it at t = 2
      {GoTo{grid::Point{0, 30}}},     // agent 1: wanders off
  });
  const rng::Rng trial(13);
  const auto r = run_search_async(s, 2, grid::Point{2, 0}, trial,
                                  FixedStart({0, 50}), NoCrash());
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 2);
  EXPECT_EQ(r.last_start, 50);
  EXPECT_EQ(r.from_last_start, 0);
}

// ---------------------------------------------------------------------------
// Crashes.
// ---------------------------------------------------------------------------

TEST(AsyncEngine, AgentCrashingBeforeHitDoesNotFind) {
  const ScriptedStrategy s({GoTo{grid::Point{10, 0}}});
  const rng::Rng trial(17);
  // Lifetime 9 < hit offset 10: the agent dies one step short.
  const auto r =
      run_search_async(s, 1, grid::Point{10, 0}, trial, SyncStart(),
                       FixedLifetime(9), {.time_cap = 10'000});
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.crashed, 1);
}

TEST(AsyncEngine, AgentHittingExactlyAtLifetimeCounts) {
  const ScriptedStrategy s({GoTo{grid::Point{10, 0}}});
  const rng::Rng trial(17);
  const auto r = run_search_async(s, 1, grid::Point{10, 0}, trial, SyncStart(),
                                  FixedLifetime(10));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 10);
}

TEST(AsyncEngine, DoaAgentsNeverAct) {
  // p = 1: every agent is dead on arrival; nothing is ever found.
  const ScriptedStrategy s({GoTo{grid::Point{3, 0}}});
  const rng::Rng trial(19);
  const auto r = run_search_async(s, 4, grid::Point{3, 0}, trial, SyncStart(),
                                  DoaCrash(1.0), {.time_cap = 1000});
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.crashed, 4);
  EXPECT_EQ(r.segments, 0);  // no dead agent pulled a segment
}

TEST(AsyncEngine, SurvivorStillFindsUnderPartialDoa) {
  // With k agents all walking to the treasure and p < 1, a single survivor
  // suffices; sweep seeds until both outcomes (some crash, found anyway)
  // co-occur.
  const ScriptedStrategy s({GoTo{grid::Point{4, 0}}});
  bool saw_mixed = false;
  for (std::uint64_t seed = 0; seed < 50 && !saw_mixed; ++seed) {
    const rng::Rng trial(seed);
    const auto r = run_search_async(s, 6, grid::Point{4, 0}, trial,
                                    SyncStart(), DoaCrash(0.5),
                                    {.time_cap = 1000});
    if (r.crashed > 0 && r.found) {
      EXPECT_EQ(r.time, 4);
      saw_mixed = true;
    }
  }
  EXPECT_TRUE(saw_mixed);
}

TEST(AsyncEngine, CrashedCountIsDeterministicPerSeed) {
  const core::HarmonicStrategy s(0.5);
  const rng::Rng trial(123);
  const auto a = run_search_async(s, 16, grid::Point{9, 9}, trial, SyncStart(),
                                  DoaCrash(0.25), {.time_cap = 100'000});
  const auto b = run_search_async(s, 16, grid::Point{9, 9}, trial, SyncStart(),
                                  DoaCrash(0.25), {.time_cap = 100'000});
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.finder, b.finder);
}

TEST(AsyncEngine, ScheduleStreamDoesNotPerturbAgentPrograms) {
  // The same trial seed must explore the same trajectories whether or not
  // delays are enabled: with all delays equal the outcome shifts rigidly.
  const core::KnownKStrategy s(4);
  const rng::Rng trial(777);
  const auto sync =
      run_search_async(s, 4, grid::Point{7, 3}, trial, SyncStart(), NoCrash());
  const auto shifted = run_search_async(s, 4, grid::Point{7, 3}, trial,
                                        FixedStart({5, 5, 5, 5}), NoCrash());
  ASSERT_TRUE(sync.found);
  ASSERT_TRUE(shifted.found);
  EXPECT_EQ(shifted.time, sync.time + 5);
  EXPECT_EQ(shifted.finder, sync.finder);
  EXPECT_EQ(shifted.from_last_start, sync.time);
}

TEST(AsyncEngine, StaggeredStartFromLastStartMatchesSyncScale) {
  // Paper section 2: measuring from the last start recovers the synchronous
  // analysis. With a gap of 1 and the known-k strategy, from_last_start must
  // stay within the same order as the synchronous time (same seed).
  const core::KnownKStrategy s(8);
  const grid::Point treasure{12, 5};
  double sync_total = 0, async_total = 0;
  const int trials = 40;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    const rng::Rng trial(seed);
    const auto sync = run_search_async(s, 8, treasure, trial, SyncStart(),
                                       NoCrash());
    const auto stag = run_search_async(s, 8, treasure, trial,
                                       StaggeredStart(1), NoCrash());
    ASSERT_TRUE(sync.found);
    ASSERT_TRUE(stag.found);
    sync_total += static_cast<double>(sync.time);
    async_total += static_cast<double>(stag.from_last_start);
  }
  // from_last_start can only be cheaper in expectation than a fresh
  // synchronous run of the same horizon (early starters pre-cover ground);
  // allow generous slack in both directions but pin the scale.
  EXPECT_LT(async_total, 3.0 * sync_total);
  EXPECT_GT(async_total, 0.05 * sync_total);
}

TEST(AsyncEngine, RejectsNonPositiveK) {
  const ScriptedStrategy s({GoTo{grid::Point{1, 0}}});
  const rng::Rng trial(1);
  EXPECT_THROW(run_search_async(s, 0, grid::Point{1, 0}, trial, SyncStart(),
                                NoCrash()),
               std::invalid_argument);
}

}  // namespace
}  // namespace ants::sim
