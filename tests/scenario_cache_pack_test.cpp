// Packed cell-cache index (scenario/cache_pack.h) and the corrupt-cache
// recovery contract (sink.h cache_lookup): packing a cache_dir must leave
// warm sweeps byte-identical to the golden CSVs, the journal must survive
// torn tails and concurrent-style appends, a killed shard must resume
// against a packed cache, and a corrupt cache entry of EITHER kind must
// read as a miss — recompute, heal, count in telemetry — never abort.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/cache_pack.h"
#include "scenario/plan.h"
#include "scenario/sink.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"
#include "telemetry/run_telemetry.h"

#ifndef ANTS_SOURCE_DIR
#error "ANTS_SOURCE_DIR must point at the repository root"
#endif

namespace ants::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

ScenarioSpec golden_spec(const std::string& stem) {
  const std::string dir = std::string(ANTS_SOURCE_DIR) + "/tests/golden/";
  const std::vector<ScenarioSpec> specs = parse_spec_file(dir + stem +
                                                          ".spec");
  EXPECT_EQ(specs.size(), 1u);
  return specs.front();
}

std::string golden_csv(const std::string& stem) {
  return read_file(std::string(ANTS_SOURCE_DIR) + "/tests/golden/" + stem +
                   ".golden.csv");
}

std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ants_pack_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string render_csv(const ScenarioSpec& spec,
                       const std::vector<CellResult>& results,
                       const std::string& path) {
  {
    CsvSink csv(path);
    std::vector<ResultSink*> sinks = {&csv};
    emit_results(spec, results, sinks);
  }
  return read_file(path);
}

std::vector<std::string> cell_files(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".cell") {
      files.push_back(entry.path().string());
    }
  }
  return files;
}

std::size_t count_cached(const std::vector<CellResult>& results) {
  std::size_t n = 0;
  for (const CellResult& r : results) n += r.from_cache ? 1 : 0;
  return n;
}

// --- pack + warm sweep: the byte-identity spine ------------------------------

void check_packed_warm_identity(const std::string& stem) {
  const ScenarioSpec spec = golden_spec(stem);
  const std::string golden = golden_csv(stem);
  const std::string dir = scratch_dir("warm_" + stem);

  SweepOptions opt;
  opt.cache_dir = dir;
  const std::vector<CellResult> cold = run_sweep(spec, opt);
  EXPECT_EQ(render_csv(spec, cold, dir + "/cold.csv"), golden)
      << stem << " cold cached run diverged from golden";

  const PackStats stats = pack_cache_dir(dir);
  EXPECT_EQ(stats.packed_cells, cold.size());
  EXPECT_EQ(stats.folded_files, cold.size());
  EXPECT_EQ(stats.corrupt_dropped, 0u);
  EXPECT_TRUE(cell_files(dir).empty())
      << "pack must remove the folded per-hash files";
  EXPECT_TRUE(std::filesystem::exists(dir + "/cache.pack"));

  const std::vector<CellResult> warm = run_sweep(spec, opt);
  EXPECT_EQ(count_cached(warm), warm.size())
      << stem << ": every cell must be served from the packed index";
  EXPECT_TRUE(cell_files(dir).empty())
      << "a fully warm run must not grow per-hash files next to the pack";
  EXPECT_EQ(render_csv(spec, warm, dir + "/warm.csv"), golden)
      << stem << " packed warm run diverged from golden";
}

TEST(CachePack, StepAsyncPackedWarmRunIsByteIdentical) {
  check_packed_warm_identity("step_async");
}

TEST(CachePack, PlaneBasePackedWarmRunIsByteIdentical) {
  check_packed_warm_identity("plane_base");
}

TEST(CachePack, AllOtherGoldenPackedWarmRunsAreByteIdentical) {
  for (const char* stem :
       {"sync", "async_crash", "placement_sweep", "multi_target",
        "plane_async"}) {
    check_packed_warm_identity(stem);
  }
}

// --- killed-shard resume against a packed cache ------------------------------

TEST(CachePack, KilledShardResumesAgainstPackedCache) {
  const ScenarioSpec spec = golden_spec("step_async");
  const std::string golden = golden_csv("step_async");
  const std::string dir = scratch_dir("resume");
  SweepOptions opt;
  opt.cache_dir = dir;

  // A "killed" first attempt: full run, then half the per-hash files
  // vanish (the kill analog — only some cells had been stored).
  run_sweep(spec, opt);
  std::vector<std::string> files = cell_files(dir);
  ASSERT_GE(files.size(), 2u);
  const std::size_t kept = files.size() / 2;
  for (std::size_t i = kept; i < files.size(); ++i) {
    std::filesystem::remove(files[i]);
  }
  const PackStats stats = pack_cache_dir(dir);
  EXPECT_EQ(stats.packed_cells, kept);

  // Resume: the surviving cells come from the packed index, the rest
  // recompute and APPEND to the journal.
  telemetry::RunTelemetry tel;
  SweepOptions opt_tel = opt;
  opt_tel.telemetry = &tel;
  const std::vector<CellResult> resumed = run_sweep(spec, opt_tel);
  EXPECT_EQ(count_cached(resumed), kept);
  EXPECT_EQ(tel.snapshot().cache_hits, kept);
  EXPECT_EQ(tel.snapshot().cache_corrupt, 0u);
  EXPECT_TRUE(cell_files(dir).empty())
      << "with a live pack, recomputed cells append to the journal "
         "instead of writing per-hash files";
  EXPECT_EQ(render_csv(spec, resumed, dir + "/resumed.csv"), golden);

  // The appends landed durably: a third run is fully warm.
  const std::vector<CellResult> warm = run_sweep(spec, opt);
  EXPECT_EQ(count_cached(warm), warm.size());
  EXPECT_EQ(render_csv(spec, warm, dir + "/warm.csv"), golden);
}

// --- journal robustness ------------------------------------------------------

TEST(CachePack, TornJournalTailIsSkippedAndCounted) {
  const ScenarioSpec spec = golden_spec("sync");
  const std::string dir = scratch_dir("torn");
  SweepOptions opt;
  opt.cache_dir = dir;
  const std::vector<CellResult> cold = run_sweep(spec, opt);
  pack_cache_dir(dir);

  // A write torn mid-record: garbage bytes at the journal tail.
  {
    std::ofstream out(dir + "/cache.pack",
                      std::ios::binary | std::ios::app);
    out << "PCK1torn-and-useless";
  }
  PackedCacheIndex index(dir);
  EXPECT_TRUE(index.present());
  EXPECT_EQ(index.size(), cold.size())
      << "intact records before the tear must all survive";
  EXPECT_GE(index.corrupt_records(), 1u);

  // The sweep serves every cell despite the tear and reports the
  // corruption through telemetry.
  telemetry::RunTelemetry tel;
  SweepOptions opt_tel = opt;
  opt_tel.telemetry = &tel;
  const std::vector<CellResult> warm = run_sweep(spec, opt_tel);
  EXPECT_EQ(count_cached(warm), warm.size());
  EXPECT_GE(tel.snapshot().cache_corrupt, 1u);
  EXPECT_EQ(render_csv(spec, warm, dir + "/warm.csv"), golden_csv("sync"));
}

TEST(CachePack, IncompatiblePackHeaderReadsAsAbsent) {
  const std::string dir = scratch_dir("badheader");
  {
    std::ofstream out(dir + "/cache.pack", std::ios::binary);
    out << std::string(256, '\x5a');  // wrong magic, plausible length
  }
  PackedCacheIndex index(dir);
  EXPECT_FALSE(index.present());
  EXPECT_EQ(index.size(), 0u);

  // run_cells falls back to the per-hash cache path untouched.
  const ScenarioSpec spec = golden_spec("sync");
  SweepOptions opt;
  opt.cache_dir = dir;
  const std::vector<CellResult> first = run_sweep(spec, opt);
  EXPECT_EQ(count_cached(first), 0u);
  const std::vector<CellResult> second = run_sweep(spec, opt);
  EXPECT_EQ(count_cached(second), second.size());
  EXPECT_EQ(render_csv(spec, second, dir + "/warm.csv"),
            golden_csv("sync"));
}

TEST(CachePack, PackDropsCorruptCellFilesAndCounts) {
  const ScenarioSpec spec = golden_spec("sync");
  const std::string dir = scratch_dir("dropcorrupt");
  SweepOptions opt;
  opt.cache_dir = dir;
  const std::vector<CellResult> cold = run_sweep(spec, opt);
  std::vector<std::string> files = cell_files(dir);
  ASSERT_GE(files.size(), 2u);
  {
    std::ofstream out(files.front(), std::ios::binary | std::ios::trunc);
    out << "not a cache record at all";
  }

  const PackStats stats = pack_cache_dir(dir);
  EXPECT_EQ(stats.packed_cells, cold.size() - 1);
  EXPECT_EQ(stats.folded_files, cold.size() - 1);
  EXPECT_EQ(stats.corrupt_dropped, 1u);
  EXPECT_TRUE(cell_files(dir).empty())
      << "corrupt per-hash files are removed, not left to rot";

  // The dropped cell recomputes on the next run; everything else is warm.
  const std::vector<CellResult> warm = run_sweep(spec, opt);
  EXPECT_EQ(count_cached(warm), warm.size() - 1);
  EXPECT_EQ(render_csv(spec, warm, dir + "/warm.csv"), golden_csv("sync"));
}

// --- corrupt per-hash entries: the recover-and-heal regression pin -----------

TEST(CacheCorruption, CorruptCellFileReadsAsMissRecomputesAndHeals) {
  const ScenarioSpec spec = golden_spec("sync");
  const std::string golden = golden_csv("sync");
  const std::string dir = scratch_dir("heal");
  SweepOptions opt;
  opt.cache_dir = dir;
  run_sweep(spec, opt);
  std::vector<std::string> files = cell_files(dir);
  ASSERT_GE(files.size(), 2u);

  // Truncate one entry and garbage another — both corruption shapes.
  {
    std::ofstream out(files[0], std::ios::binary | std::ios::trunc);
  }
  {
    std::ofstream out(files[1], std::ios::binary | std::ios::trunc);
    out << "time_mean=not-a-number\n";
  }

  // cache_lookup reports kCorrupt distinctly from a plain miss...
  CellResult probe;
  const SweepPlan plan = make_plan(spec);
  std::size_t corrupt_probes = 0;
  for (const Cell& cell : plan.cells) {
    if (cache_lookup(dir, cell.hash, &probe) == CacheLookup::kCorrupt) {
      ++corrupt_probes;
    }
  }
  EXPECT_EQ(corrupt_probes, 2u);

  // ...the sweep recomputes those cells (never aborts), counts them in
  // cache_corrupt, and emits golden-identical output.
  telemetry::RunTelemetry tel;
  SweepOptions opt_tel = opt;
  opt_tel.telemetry = &tel;
  const std::vector<CellResult> healed = run_sweep(spec, opt_tel);
  EXPECT_EQ(count_cached(healed), healed.size() - 2);
  EXPECT_EQ(tel.snapshot().cache_corrupt, 2u);
  EXPECT_EQ(render_csv(spec, healed, dir + "/healed.csv"), golden);

  // The store overwrote the corrupt entries: next run is fully warm and
  // corruption-free.
  telemetry::RunTelemetry tel2;
  opt_tel.telemetry = &tel2;
  const std::vector<CellResult> warm = run_sweep(spec, opt_tel);
  EXPECT_EQ(count_cached(warm), warm.size());
  EXPECT_EQ(tel2.snapshot().cache_corrupt, 0u);
  EXPECT_EQ(tel2.snapshot().cache_hits, warm.size());
}

TEST(CacheCorruption, CacheCorruptCounterRoundTripsThroughMetricsJson) {
  telemetry::RunMetrics metrics;
  metrics.cache_corrupt = 7;
  metrics.cache_misses = 7;
  const std::string line =
      telemetry::metrics_to_json(metrics, "pin", 0, 0);
  EXPECT_NE(line.find("\"cache_corrupt\":7"), std::string::npos);
  const telemetry::RunMetrics back =
      telemetry::metrics_from_json(line, nullptr, nullptr, nullptr);
  EXPECT_EQ(back.cache_corrupt, 7u);

  // Aggregation folds it like every other counter.
  telemetry::RunMetrics sum;
  sum.merge(metrics);
  sum.merge(back);
  EXPECT_EQ(sum.cache_corrupt, 14u);
}

}  // namespace
}  // namespace ants::scenario
