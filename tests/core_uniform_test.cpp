#include "core/uniform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <variant>
#include <vector>

#include "core/params.h"
#include "sim/runner.h"

namespace ants::core {
namespace {

using sim::GoTo;
using sim::Op;
using sim::ReturnToSource;
using sim::SpiralFor;

TEST(Uniform, RejectsNegativeEps) {
  EXPECT_THROW(UniformStrategy(-0.1), std::invalid_argument);
  EXPECT_NO_THROW(UniformStrategy(0.0));
  EXPECT_NO_THROW(UniformStrategy(2.0));
}

TEST(Uniform, BallRadiusMatchesFormula) {
  const UniformStrategy s(0.5);
  // D_ij = sqrt(2^(i+j)/j^1.5), with j^ = max(j,1).
  for (int i = 0; i <= 12; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double jj = j < 1 ? 1.0 : j;
      const double expect = std::sqrt(std::ldexp(1.0, i + j) /
                                      std::pow(jj, 1.5));
      const std::int64_t clamped =
          expect < 1 ? 1 : static_cast<std::int64_t>(expect);
      EXPECT_EQ(s.ball_radius(i, j), clamped) << i << "," << j;
    }
  }
}

TEST(Uniform, SpiralBudgetMatchesFormula) {
  const UniformStrategy s(0.3);
  for (int i = 0; i <= 12; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double jj = j < 1 ? 1.0 : j;
      const double expect = std::ldexp(1.0, i + 2) / std::pow(jj, 1.3);
      const std::int64_t clamped =
          expect < 1 ? 1 : static_cast<std::int64_t>(expect);
      EXPECT_EQ(s.spiral_budget(i, j), clamped) << i << "," << j;
    }
  }
}

TEST(Uniform, ScheduleTraversalOrder) {
  // Phases iterate (l, i, j) with j in [0,i], i in [0,l]: the first few
  // (i, j) pairs are (0,0); (0,0),(1,0),(1,1); (0,0),(1,0),(1,1),(2,0)...
  const UniformStrategy s(1.0);
  const auto program = s.make_program(sim::AgentContext{});
  rng::Rng rng(5);
  std::vector<sim::Time> budgets;
  for (int trip = 0; trip < 10; ++trip) {
    (void)program->next(rng);
    budgets.push_back(std::get<SpiralFor>(program->next(rng)).duration);
    (void)program->next(rng);
  }
  const std::vector<sim::Time> expected{
      s.spiral_budget(0, 0),                                          // l=0
      s.spiral_budget(0, 0), s.spiral_budget(1, 0), s.spiral_budget(1, 1),
      s.spiral_budget(0, 0), s.spiral_budget(1, 0), s.spiral_budget(1, 1),
      s.spiral_budget(2, 0), s.spiral_budget(2, 1), s.spiral_budget(2, 2)};
  EXPECT_EQ(budgets, expected);
}

TEST(Uniform, IsTrulyUniform) {
  // The defining property: the op stream must be independent of ctx.k and
  // ctx.agent_index (Theorem 3.3's algorithm never reads them).
  const UniformStrategy s(0.7);
  const auto p_small = s.make_program(sim::AgentContext{0, 1});
  const auto p_large = s.make_program(sim::AgentContext{9, 1 << 20});
  rng::Rng ra(123), rb(123);
  for (int i = 0; i < 90; ++i) {
    const Op a = p_small->next(ra);
    const Op b = p_large->next(rb);
    ASSERT_EQ(a.index(), b.index()) << i;
    if (const auto* go = std::get_if<GoTo>(&a)) {
      EXPECT_EQ(go->target, std::get<GoTo>(b).target);
    } else if (const auto* sp = std::get_if<SpiralFor>(&a)) {
      EXPECT_EQ(sp->duration, std::get<SpiralFor>(b).duration);
    }
  }
}

TEST(Uniform, TargetsWithinScheduleBall) {
  const UniformStrategy s(0.5);
  const auto program = s.make_program(sim::AgentContext{});
  rng::Rng rng(6);
  const std::vector<std::pair<int, int>> ij{
      {0, 0}, {0, 0}, {1, 0}, {1, 1}, {0, 0}, {1, 0}, {1, 1},
      {2, 0}, {2, 1}, {2, 2}};
  for (const auto& [i, j] : ij) {
    const Op go = program->next(rng);
    EXPECT_LE(grid::l1_norm(std::get<GoTo>(go).target), s.ball_radius(i, j))
        << i << "," << j;
    (void)program->next(rng);
    (void)program->next(rng);
  }
}

TEST(Uniform, LargerEpsShrinksLatePhaseBudgets) {
  // Bigger eps divides later phases (large j) harder.
  const UniformStrategy small(0.1), large(1.0);
  EXPECT_GT(small.spiral_budget(12, 8), large.spiral_budget(12, 8));
  EXPECT_GE(small.ball_radius(12, 8), large.ball_radius(12, 8));
  // j = 0 and j = 1 are unaffected (divisor 1).
  EXPECT_EQ(small.spiral_budget(9, 0), large.spiral_budget(9, 0));
  EXPECT_EQ(small.spiral_budget(9, 1), large.spiral_budget(9, 1));
}

TEST(Uniform, FindsTreasureAtSmallScale) {
  const UniformStrategy strategy(0.5);
  sim::RunConfig config;
  config.trials = 80;
  config.seed = 21;
  const sim::RunStats rs =
      sim::run_trials(strategy, 2, 6, sim::uniform_ring_placement(), config);
  EXPECT_EQ(rs.success_rate, 1.0);
  EXPECT_GT(rs.time.mean, 0.0);
  EXPECT_LT(rs.mean_competitiveness, 100.0);
}

}  // namespace
}  // namespace ants::core
