// The run telemetry subsystem: counters/timers/sketches, the metrics JSON
// round-trip, the JSONL event-log schema, Chrome trace validity, exact
// shard-metrics aggregation through artifacts — and the contract everything
// else rests on: telemetry is strictly observational, so result rows are
// byte-identical with it on or off (checked against every pinned golden
// CSV).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/json.h"
#include "scenario/sink.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/run_telemetry.h"
#include "telemetry/trace.h"

#ifndef ANTS_SOURCE_DIR
#error "ANTS_SOURCE_DIR must point at the repository root"
#endif

namespace ants::telemetry {
namespace {

namespace det = scenario::detail;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

scenario::ScenarioSpec golden_spec(const std::string& stem) {
  const std::string dir = std::string(ANTS_SOURCE_DIR) + "/tests/golden/";
  const std::vector<scenario::ScenarioSpec> specs =
      scenario::parse_spec_file(dir + stem + ".spec");
  EXPECT_EQ(specs.size(), 1u);
  return specs.front();
}

std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ants_telemetry_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Results rendered to CSV bytes through the same CsvSink path search_lab
/// uses — the unit the byte-identity assertions compare.
std::string results_csv(const scenario::ScenarioSpec& spec,
                        const std::vector<scenario::CellResult>& results,
                        const std::string& path) {
  {
    scenario::CsvSink csv(path);
    std::vector<scenario::ResultSink*> sinks = {&csv};
    emit_results(spec, results, sinks);
  }
  return read_file(path);
}

// --- counters, timers, sketches --------------------------------------------

TEST(Telemetry, CounterAndTimerAccumulate) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  Timer t;
  t.add_us(100);
  {
    const Timer::Scope scope(&t);
  }
  // The scope adds real (non-negative) elapsed time on top of the manual
  // 100.
  EXPECT_GE(t.value_us(), 100);

  {
    const Timer::Scope noop(nullptr);  // null timer must be a safe no-op
  }
}

TEST(Telemetry, DurationSketchQuantilesMergeAndSerialization) {
  DurationSketch a;
  for (int i = 0; i < 100; ++i) a.add_us(1000.0);  // 1 ms point mass
  EXPECT_EQ(a.total(), 100u);
  // log2 binning has ~5% relative resolution; the quantile lands within the
  // 1 ms bin.
  EXPECT_NEAR(a.quantile_us(0.5), 1000.0, 1000.0 * 0.06);

  DurationSketch b;
  for (int i = 0; i < 100; ++i) b.add_us(16000.0);  // 16 ms point mass

  // Exact bin-wise merge: the merged sketch equals the sketch one process
  // would have built from the union of samples.
  DurationSketch merged;
  merged.merge(a);
  merged.merge(b);
  DurationSketch direct;
  for (int i = 0; i < 100; ++i) direct.add_us(1000.0);
  for (int i = 0; i < 100; ++i) direct.add_us(16000.0);
  EXPECT_EQ(merged.total(), 200u);
  EXPECT_EQ(merged.sparse_bins(), direct.sparse_bins());
  for (const double p : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.quantile_us(p), direct.quantile_us(p)) << p;
  }

  // Sparse (bin, count) serialization rebuilds the identical sketch.
  DurationSketch rebuilt;
  rebuilt.add_sparse_bins(merged.sparse_bins());
  EXPECT_EQ(rebuilt.sparse_bins(), merged.sparse_bins());
  EXPECT_DOUBLE_EQ(rebuilt.quantile_us(0.5), merged.quantile_us(0.5));

  // Sub-microsecond samples saturate into the first bin instead of going
  // negative in log2 space.
  DurationSketch tiny;
  tiny.add_us(0.0);
  EXPECT_EQ(tiny.total(), 1u);

  EXPECT_TRUE(std::isnan(DurationSketch().quantile_us(0.5)));
}

// --- metrics JSON ----------------------------------------------------------

TEST(Telemetry, MetricsJsonRoundTrips) {
  RunMetrics m;
  m.cells_total = 12;
  m.cells_computed = 9;
  m.cells_cached = 3;
  m.trials_executed = 1800;
  m.cache_hits = 3;
  m.cache_misses = 9;
  m.batch_scalar_fallback = 4;
  m.plan_us = 1234;
  m.execute_us = 567890;
  m.merge_us = 7;
  for (int i = 0; i < 9; ++i) m.cell_duration.add_us(2000.0 * (i + 1));

  const std::string line = metrics_to_json(m, "demo", 2, 3);
  std::string scenario;
  std::size_t shard = 0, n_shards = 0;
  const RunMetrics back =
      metrics_from_json(line, &scenario, &shard, &n_shards);

  EXPECT_EQ(scenario, "demo");
  EXPECT_EQ(shard, 2u);
  EXPECT_EQ(n_shards, 3u);
  EXPECT_EQ(back.cells_total, m.cells_total);
  EXPECT_EQ(back.cells_computed, m.cells_computed);
  EXPECT_EQ(back.cells_cached, m.cells_cached);
  EXPECT_EQ(back.trials_executed, m.trials_executed);
  EXPECT_EQ(back.cache_hits, m.cache_hits);
  EXPECT_EQ(back.cache_misses, m.cache_misses);
  EXPECT_EQ(back.batch_scalar_fallback, m.batch_scalar_fallback);
  EXPECT_EQ(back.plan_us, m.plan_us);
  EXPECT_EQ(back.execute_us, m.execute_us);
  EXPECT_EQ(back.merge_us, m.merge_us);
  EXPECT_EQ(back.cell_duration.sparse_bins(), m.cell_duration.sparse_bins());

  EXPECT_THROW(metrics_from_json("{\"kind\":\"nope\"}", nullptr, nullptr,
                                 nullptr),
               std::invalid_argument);
  EXPECT_THROW(metrics_from_json("not json", nullptr, nullptr, nullptr),
               std::invalid_argument);
}

TEST(Telemetry, SketchSaturationSurvivesJsonAndShardMerge) {
  // Clipped samples: sub-microsecond durations underflow the log2 domain,
  // absurdly long ones overflow it. Both land in the edge bins, so the
  // sparse serialization alone rebuilds a sketch whose quantiles misread
  // them as in-range — the saturation counters must round-trip too.
  RunMetrics m;
  m.cell_duration.add_us(0.25);   // underflow (log2 < 0)
  m.cell_duration.add_us(0.5);    // underflow
  m.cell_duration.add_us(2000.0); // in-range
  m.cell_duration.add_us(3e12);   // overflow (> 2^40 us)
  ASSERT_EQ(m.cell_duration.saturation(),
            (std::pair<std::uint64_t, std::uint64_t>{2, 1}));

  const std::string line = metrics_to_json(m, "demo", 0, 2);
  const RunMetrics back = metrics_from_json(line, nullptr, nullptr, nullptr);
  EXPECT_EQ(back.cell_duration.saturation(), m.cell_duration.saturation());
  EXPECT_EQ(back.cell_duration.sparse_bins(), m.cell_duration.sparse_bins());
  // The "(saturated: ...)" report line survives the round-trip.
  EXPECT_NE(back.cell_duration.log2_histogram().render().find("(saturated:"),
            std::string::npos);

  // Shard re-aggregation: merging two round-tripped shards sums the
  // counters exactly as one process would have counted them.
  RunMetrics shard2;
  shard2.cell_duration.add_us(0.1);  // underflow
  shard2.cell_duration.add_us(5e12); // overflow
  RunMetrics merged = metrics_from_json(metrics_to_json(m, "demo", 0, 2),
                                        nullptr, nullptr, nullptr);
  merged.merge(metrics_from_json(metrics_to_json(shard2, "demo", 1, 2),
                                 nullptr, nullptr, nullptr));
  EXPECT_EQ(merged.cell_duration.saturation(),
            (std::pair<std::uint64_t, std::uint64_t>{3, 2}));

  // Pre-fix records (no saturation keys) read back with zero counters
  // instead of failing.
  std::string legacy = metrics_to_json(m, "demo", 0, 2);
  const auto strip = [&](const std::string& key) {
    const std::size_t at = legacy.find(",\"" + key + "\":");
    ASSERT_NE(at, std::string::npos);
    const std::size_t end = legacy.find_first_of(",}", at + 1 + key.size() + 4);
    legacy.erase(at, end - at);
  };
  strip("cell_hist_under");
  strip("cell_hist_over");
  const RunMetrics old = metrics_from_json(legacy, nullptr, nullptr, nullptr);
  EXPECT_EQ(old.cell_duration.saturation(),
            (std::pair<std::uint64_t, std::uint64_t>{0, 0}));
  EXPECT_EQ(old.cell_duration.sparse_bins(), m.cell_duration.sparse_bins());
}

TEST(Telemetry, RunMetricsMergeSumsEverything) {
  RunMetrics a, b;
  a.cells_total = 3;
  a.cells_computed = 2;
  a.cells_cached = 1;
  a.trials_executed = 200;
  a.cache_hits = 1;
  a.batch_scalar_fallback = 2;
  a.plan_us = 10;
  a.execute_us = 100;
  a.cell_duration.add_us(1000.0);
  b.cells_total = 5;
  b.cells_computed = 5;
  b.trials_executed = 500;
  b.cache_misses = 5;
  b.batch_scalar_fallback = 3;
  b.plan_us = 20;
  b.execute_us = 300;
  b.merge_us = 7;
  b.cell_duration.add_us(4000.0);

  a.merge(b);
  EXPECT_EQ(a.cells_total, 8u);
  EXPECT_EQ(a.cells_computed, 7u);
  EXPECT_EQ(a.cells_cached, 1u);
  EXPECT_EQ(a.trials_executed, 700u);
  EXPECT_EQ(a.cache_hits, 1u);
  EXPECT_EQ(a.cache_misses, 5u);
  EXPECT_EQ(a.batch_scalar_fallback, 5u);
  EXPECT_EQ(a.plan_us, 30);
  EXPECT_EQ(a.execute_us, 400);
  EXPECT_EQ(a.merge_us, 7);
  EXPECT_EQ(a.cell_duration.total(), 2u);
}

// --- event log schema ------------------------------------------------------

/// Parses one JSONL event line into name -> value, asserting it is valid
/// flat JSON with "event" and "ts_ms".
std::map<std::string, det::JsonValue> parse_event(const std::string& line) {
  det::JsonLineParser parser(line);
  std::map<std::string, det::JsonValue> out;
  for (auto& [key, value] : parser.parse_object()) {
    out[key] = std::move(value);
  }
  EXPECT_TRUE(out.count("event")) << line;
  EXPECT_TRUE(out.count("ts_ms")) << line;
  EXPECT_EQ(out["ts_ms"].kind, det::JsonValue::Kind::kNumber) << line;
  return out;
}

void expect_fields(const std::map<std::string, det::JsonValue>& event,
                   const std::vector<std::string>& names,
                   const std::string& line) {
  for (const std::string& name : names) {
    EXPECT_TRUE(event.count(name)) << "missing '" << name << "' in " << line;
  }
}

TEST(Telemetry, EventLogSchemaRoundTripsThroughJsonParser) {
  const scenario::ScenarioSpec spec = golden_spec("sync");

  std::ostringstream events;
  TelemetryConfig config;
  config.heartbeat_interval_ms = 0;  // heartbeat on every completion
  RunTelemetry tel(config, events);

  scenario::SweepOptions opt;
  // One thread: the heartbeat CAS is race-free, so the interval-0 count is
  // exactly one heartbeat per cell completion.
  opt.threads = 1;
  opt.telemetry = &tel;
  const std::vector<scenario::CellResult> results =
      scenario::run_sweep(spec, opt);
  tel.finish();

  std::istringstream lines(events.str());
  std::string line;
  std::map<std::string, std::size_t> kind_counts;
  while (std::getline(lines, line)) {
    auto event = parse_event(line);
    const std::string kind = event["event"].string;
    kind_counts[kind] += 1;
    if (kind == "run_start") {
      expect_fields(event,
                    {"scenario", "cells", "trials_per_cell", "shard",
                     "n_shards"},
                    line);
      EXPECT_EQ(event["scenario"].string, spec.name);
    } else if (kind == "cell_start") {
      expect_fields(event, {"cell", "name", "k", "D"}, line);
    } else if (kind == "cell_end") {
      expect_fields(event,
                    {"cell", "name", "k", "D", "status", "duration_ms",
                     "trials"},
                    line);
      EXPECT_EQ(event["status"].string, "computed");
    } else if (kind == "heartbeat") {
      expect_fields(event, {"done", "total", "trials_executed"}, line);
    } else if (kind == "run_end") {
      expect_fields(event,
                    {"cells_computed", "cells_cached", "trials_executed",
                     "duration_ms"},
                    line);
    } else {
      ADD_FAILURE() << "unknown event kind: " << line;
    }
  }

  EXPECT_EQ(kind_counts["run_start"], 1u);
  EXPECT_EQ(kind_counts["run_end"], 1u);
  EXPECT_EQ(kind_counts["cell_start"], results.size());
  EXPECT_EQ(kind_counts["cell_end"], results.size());
  EXPECT_EQ(kind_counts["heartbeat"], results.size());  // interval 0
}

// --- Chrome trace ----------------------------------------------------------

TEST(Telemetry, TraceRendersValidChromeTraceJson) {
  const scenario::ScenarioSpec spec = golden_spec("sync");

  std::ostringstream events;
  RunTelemetry tel(TelemetryConfig{}, events);  // trace always on here
  scenario::SweepOptions opt;
  opt.threads = 2;
  opt.telemetry = &tel;
  scenario::run_sweep(spec, opt);

  ASSERT_NE(tel.trace(), nullptr);
  const std::string trace = tel.trace()->render();

  // The whole trace is one JSON object with a traceEvents array of (nested)
  // objects — parseable by the shared JSON parser's object support.
  det::JsonLineParser parser(trace);
  const auto fields = parser.parse_object();
  const det::JsonValue* trace_events = nullptr;
  for (const auto& [key, value] : fields) {
    if (key == "traceEvents") trace_events = &value;
  }
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->kind, det::JsonValue::Kind::kArray);

  std::size_t meta = 0, spans = 0;
  std::uint64_t span_trials = 0;
  for (const det::JsonValue& event : trace_events->array) {
    ASSERT_EQ(event.kind, det::JsonValue::Kind::kObject);
    std::map<std::string, const det::JsonValue*> by_name;
    for (const auto& [key, value] : event.object) by_name[key] = &value;
    ASSERT_TRUE(by_name.count("name"));
    ASSERT_TRUE(by_name.count("ph"));
    ASSERT_TRUE(by_name.count("pid"));
    ASSERT_TRUE(by_name.count("tid"));
    const std::string ph = by_name["ph"]->string;
    if (ph == "M") {
      ++meta;
      continue;
    }
    ASSERT_EQ(ph, "X");  // complete events only
    ++spans;
    ASSERT_TRUE(by_name.count("ts"));
    ASSERT_TRUE(by_name.count("dur"));
    EXPECT_GE(det::parse_double("dur", by_name["dur"]->string), 1.0);
    if (by_name.count("args")) {
      ASSERT_EQ(by_name["args"]->kind, det::JsonValue::Kind::kObject);
      for (const auto& [key, value] : by_name["args"]->object) {
        if (key == "trials") {
          span_trials += static_cast<std::uint64_t>(
              det::parse_double("trials", value.string));
        }
      }
    }
  }
  EXPECT_GE(meta, 2u);   // process_name + at least one thread_name
  EXPECT_GE(spans, 1u);  // at least the execute phase span
  // Coalesced worker spans account for every executed trial exactly once.
  EXPECT_EQ(span_trials, tel.snapshot().trials_executed);
}

// --- the strict-observation contract ---------------------------------------

// Telemetry on (events + trace + metrics all active) must not perturb a
// single byte of any pinned golden CSV. This is the determinism
// non-negotiable: no timing data may leak into seeds, cache keys, or sink
// columns.
TEST(Telemetry, GoldenCsvsByteIdenticalWithTelemetryOn) {
  const std::string dir = std::string(ANTS_SOURCE_DIR) + "/tests/golden/";
  const std::string tmp = scratch_dir("golden");
  for (const std::string stem :
       {"sync", "async_crash", "placement_sweep", "step_async",
        "multi_target", "plane_base", "plane_async"}) {
    const scenario::ScenarioSpec spec = golden_spec(stem);

    std::ostringstream events;
    RunTelemetry tel(TelemetryConfig{}, events);
    scenario::SweepOptions opt;
    opt.threads = 3;
    opt.telemetry = &tel;
    const std::vector<scenario::CellResult> results =
        scenario::run_sweep(spec, opt);
    tel.finish();

    EXPECT_EQ(results_csv(spec, results, tmp + "/" + stem + ".csv"),
              read_file(dir + stem + ".golden.csv"))
        << "telemetry perturbed golden " << stem;
    EXPECT_GT(tel.snapshot().trials_executed, 0u);
  }
}

// --- end-to-end counting and shard aggregation -----------------------------

TEST(Telemetry, CacheHitsCountOnWarmRerun) {
  const scenario::ScenarioSpec spec = golden_spec("sync");
  const std::string cache = scratch_dir("cache");
  const std::size_t n_cells = scenario::flatten(spec).size();

  RunTelemetry cold;
  scenario::SweepOptions opt;
  opt.threads = 2;
  opt.cache_dir = cache;
  opt.telemetry = &cold;
  scenario::run_sweep(spec, opt);
  const RunMetrics cold_m = cold.snapshot();
  EXPECT_EQ(cold_m.cells_total, n_cells);
  EXPECT_EQ(cold_m.cells_computed, n_cells);
  EXPECT_EQ(cold_m.cells_cached, 0u);
  EXPECT_EQ(cold_m.cache_hits, 0u);
  EXPECT_EQ(cold_m.cache_misses, n_cells);
  EXPECT_EQ(cold_m.trials_executed,
            n_cells * static_cast<std::uint64_t>(spec.trials));
  EXPECT_GT(cold_m.trials_per_sec(), 0.0);
  EXPECT_EQ(cold_m.cell_duration.total(), n_cells);

  RunTelemetry warm;
  opt.telemetry = &warm;
  scenario::run_sweep(spec, opt);
  const RunMetrics warm_m = warm.snapshot();
  EXPECT_EQ(warm_m.cache_hits, n_cells);
  EXPECT_EQ(warm_m.cache_misses, 0u);
  EXPECT_EQ(warm_m.cells_cached, n_cells);
  EXPECT_EQ(warm_m.cells_computed, 0u);
  EXPECT_EQ(warm_m.trials_executed, 0u);
}

TEST(Telemetry, ShardMetricsAggregateExactlyThroughArtifacts) {
  const scenario::ScenarioSpec spec = golden_spec("step_async");
  const scenario::SweepPlan plan = scenario::make_plan(spec);
  const std::string dir = scratch_dir("shards");
  const std::size_t n_shards = 3;

  // Run each shard with its own telemetry; embed the metrics in the
  // artifact exactly like `search_lab run --shard` does.
  RunMetrics expected;
  std::vector<std::string> paths;
  for (std::size_t s = 1; s <= n_shards; ++s) {
    RunTelemetry tel;
    scenario::SweepOptions opt;
    opt.threads = 2;
    opt.telemetry = &tel;
    const std::vector<scenario::CellResult> results =
        scenario::run_shard(plan, s, n_shards, opt);
    const std::string path = dir + "/shard" + std::to_string(s) + ".jsonl";
    const RunMetrics metrics = tel.snapshot();
    scenario::write_shard(path, plan, s, n_shards, results, &metrics);
    expected.merge(metrics);
    paths.push_back(path);

    // The artifact carries the metrics line and it parses back to the same
    // record.
    std::string line;
    scenario::read_shard_artifact(path, nullptr, &line);
    ASSERT_FALSE(line.empty());
    std::size_t shard_back = 0, n_back = 0;
    const RunMetrics back =
        metrics_from_json(line, nullptr, &shard_back, &n_back);
    EXPECT_EQ(shard_back, s);
    EXPECT_EQ(n_back, n_shards);
    EXPECT_EQ(back.trials_executed, metrics.trials_executed);
  }

  RunMetrics merged;
  scenario::merge_shards(plan, paths, &merged);
  EXPECT_EQ(merged.cells_total, plan.cells.size());
  EXPECT_EQ(merged.cells_computed, plan.cells.size());
  EXPECT_EQ(merged.trials_executed,
            plan.cells.size() * static_cast<std::uint64_t>(spec.trials));
  EXPECT_EQ(merged.trials_executed, expected.trials_executed);
  EXPECT_EQ(merged.plan_us, expected.plan_us);
  EXPECT_EQ(merged.execute_us, expected.execute_us);
  // The sketch aggregation is EXACT: merged bins equal the bin-wise sum of
  // the per-shard sketches, so campaign quantiles match what one process
  // would have reported over the same cell durations.
  EXPECT_EQ(merged.cell_duration.sparse_bins(),
            expected.cell_duration.sparse_bins());
  EXPECT_EQ(merged.cell_duration.total(), plan.cells.size());

  // Artifacts without metrics lines still merge — metrics are optional.
  std::vector<scenario::ShardEntry> entries;
  const scenario::ShardHeader header =
      scenario::read_shard_artifact(paths[0], &entries);
  scenario::write_shard_artifact(dir + "/bare.jsonl", header, entries);
  RunMetrics partial;
  std::vector<std::string> mixed = paths;
  mixed[0] = dir + "/bare.jsonl";
  scenario::merge_shards(plan, mixed, &partial);
  EXPECT_LT(partial.trials_executed, merged.trials_executed);
}

TEST(Telemetry, EventLogThrowsOnUnwritablePath) {
  EXPECT_THROW(EventLog("/nonexistent-dir-xyz/events.jsonl"),
               std::runtime_error);
  EXPECT_THROW(
      RunTelemetry(TelemetryConfig{"/nonexistent-dir-xyz/e.jsonl", "", 1000}),
      std::runtime_error);
}

}  // namespace
}  // namespace ants::telemetry
