#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/format.h"
#include "util/table.h"

namespace ants::util {
namespace {

TEST(Format, FixedDecimals) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt_fixed(-1.5, 1), "-1.5");
}

TEST(Format, CompactIntegers) {
  EXPECT_EQ(fmt_compact(42), "42");
  EXPECT_EQ(fmt_compact(-7), "-7");
  EXPECT_EQ(fmt_compact(999999), "999999");
}

TEST(Format, CompactLargeUsesScientific) {
  EXPECT_EQ(fmt_compact(1e6), "1e+06");
  EXPECT_EQ(fmt_compact(2.5e9), "2.5e+09");
}

TEST(Format, CompactFractions) {
  EXPECT_EQ(fmt_compact(0.5), "0.500");
  EXPECT_EQ(fmt_compact(123.456), "123.456");
}

TEST(Table, AlignedOutput) {
  Table t({"k", "time"});
  t.add_row({"1", "100"});
  t.add_row({"1024", "3"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("k     time"), std::string::npos);
  EXPECT_NE(out.find("1024  3"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, MarkdownOutput) {
  Table t({"a", "b"});
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_EQ(os.str(), "| a | b |\n|---|---|\n| x | y |\n");
}

TEST(Table, NumericRow) {
  Table t({"v1", "v2", "v3"});
  t.add_row_numeric({1.0, 0.25, 3e7});
  EXPECT_EQ(t.row(0)[0], "1");
  EXPECT_EQ(t.row(0)[1], "0.250");
  EXPECT_EQ(t.row(0)[2], "3e+07");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ants_csv_test.csv";

  void TearDown() override { std::remove(path_.c_str()); }

  std::string slurp() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"k", "time"});
    csv.add_row({"4", "123"});
    csv.add_row_numeric({16.0, 7.5});
    EXPECT_EQ(csv.rows(), 2u);
  }
  EXPECT_EQ(slurp(), "k,time\n4,123\n16,7.500\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"name"});
    csv.add_row({"a,b"});
    csv.add_row({"say \"hi\""});
  }
  EXPECT_EQ(slurp(), "name\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, RowWidthEnforced) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
}

TEST(Csv, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace ants::util
