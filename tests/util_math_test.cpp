#include "util/math.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/sat.h"

namespace ants::util {
namespace {

TEST(Isqrt, ExactOnSmallSweep) {
  for (std::int64_t n = 0; n <= 100000; ++n) {
    const std::int64_t r = isqrt(n);
    EXPECT_LE(r * r, n) << n;
    EXPECT_GT((r + 1) * (r + 1), n) << n;
  }
}

TEST(Isqrt, PerfectSquares) {
  for (std::int64_t r = 0; r <= 3000000; r += 997) {
    EXPECT_EQ(isqrt(r * r), r);
    if (r > 0) {
      EXPECT_EQ(isqrt(r * r - 1), r - 1);
      // r^2 + 1 < (r+1)^2 only holds for r >= 1; isqrt(0*0 + 1) is 1.
      EXPECT_EQ(isqrt(r * r + 1), r);
    }
  }
}

TEST(Isqrt, LargeValuesWhereDoubleRoundsBadly) {
  // Near 2^62: double sqrt is not exact; the fixup loop must correct it.
  const std::int64_t big = std::int64_t{1} << 62;
  const std::int64_t r = isqrt(big);
  EXPECT_LE(r * r, big);
  // (r+1)^2 may overflow if naively squared near INT64_MAX; r ~ 2^31 so ok.
  EXPECT_GT((r + 1) * (r + 1), big);

  const std::int64_t exact = std::int64_t{3037000499};  // floor(sqrt(2^63-1))
  EXPECT_EQ(isqrt(std::numeric_limits<std::int64_t>::max()), exact);
}

TEST(IsqrtCeil, MatchesDefinition) {
  EXPECT_EQ(isqrt_ceil(0), 0);
  EXPECT_EQ(isqrt_ceil(1), 1);
  EXPECT_EQ(isqrt_ceil(2), 2);
  EXPECT_EQ(isqrt_ceil(4), 2);
  EXPECT_EQ(isqrt_ceil(5), 3);
  for (std::int64_t n = 1; n < 5000; ++n) {
    const std::int64_t c = isqrt_ceil(n);
    EXPECT_GE(c * c, n);
    EXPECT_LT((c - 1) * (c - 1), n);
  }
}

TEST(Log2, FloorAndCeil) {
  EXPECT_EQ(log2_floor(1), 0);
  EXPECT_EQ(log2_floor(2), 1);
  EXPECT_EQ(log2_floor(3), 1);
  EXPECT_EQ(log2_floor(4), 2);
  EXPECT_EQ(log2_ceil(1), 0);
  EXPECT_EQ(log2_ceil(2), 1);
  EXPECT_EQ(log2_ceil(3), 2);
  EXPECT_EQ(log2_ceil(5), 3);
  for (int e = 0; e <= 62; ++e) {
    EXPECT_EQ(log2_floor(pow2(e)), e);
    EXPECT_EQ(log2_ceil(pow2(e)), e);
  }
  for (int e = 1; e <= 61; ++e) {
    EXPECT_EQ(log2_floor(pow2(e) + 1), e);
    EXPECT_EQ(log2_ceil(pow2(e) + 1), e + 1);
  }
}

TEST(Pow2AndIpow, Basics) {
  EXPECT_EQ(pow2(0), 1);
  EXPECT_EQ(pow2(10), 1024);
  EXPECT_EQ(pow2(62), std::int64_t{1} << 62);
  EXPECT_EQ(ipow(3, 0), 1);
  EXPECT_EQ(ipow(3, 4), 81);
  EXPECT_EQ(ipow(2, 20), 1 << 20);
  EXPECT_EQ(ipow(0, 5), 0);
  EXPECT_EQ(ipow(-2, 3), -8);
}

TEST(DivCeil, RoundsUp) {
  EXPECT_EQ(div_ceil(0, 4), 0);
  EXPECT_EQ(div_ceil(1, 4), 1);
  EXPECT_EQ(div_ceil(4, 4), 1);
  EXPECT_EQ(div_ceil(5, 4), 2);
  EXPECT_EQ(div_ceil(-4, 4), -1);
  EXPECT_EQ(div_ceil(-5, 4), -1);
}

TEST(SignAbs, Basics) {
  EXPECT_EQ(sign(5), 1);
  EXPECT_EQ(sign(-5), -1);
  EXPECT_EQ(sign(0), 0);
  EXPECT_EQ(iabs(-7), 7);
  EXPECT_EQ(iabs(7), 7);
  EXPECT_EQ(iabs(0), 0);
}

TEST(Saturating, AddCapsAtLimit) {
  EXPECT_EQ(sat_add(1, 2), 3);
  EXPECT_EQ(sat_add(kTimeCap, 1), kTimeCap);
  EXPECT_EQ(sat_add(kTimeCap - 1, 1), kTimeCap);
  EXPECT_EQ(sat_add(kTimeCap - 1, kTimeCap - 1), kTimeCap);
  EXPECT_EQ(sat_add(0, 0), 0);
}

TEST(Saturating, MulCapsAtLimit) {
  EXPECT_EQ(sat_mul(3, 4), 12);
  EXPECT_EQ(sat_mul(0, kTimeCap), 0);
  EXPECT_EQ(sat_mul(kTimeCap, 2), kTimeCap);
  EXPECT_EQ(sat_mul(std::int64_t{1} << 32, std::int64_t{1} << 32), kTimeCap);
  EXPECT_EQ(sat_mul(std::int64_t{1} << 30, std::int64_t{1} << 30),
            std::int64_t{1} << 60);
}

TEST(Saturating, FromDouble) {
  EXPECT_EQ(sat_from_double(0.0), 0);
  EXPECT_EQ(sat_from_double(-5.0), 0);
  EXPECT_EQ(sat_from_double(42.9), 42);
  EXPECT_EQ(sat_from_double(1e30), kTimeCap);
  EXPECT_EQ(sat_from_double(std::numeric_limits<double>::quiet_NaN()),
            kTimeCap);
  EXPECT_EQ(sat_from_double(std::numeric_limits<double>::infinity()),
            kTimeCap);
}

}  // namespace
}  // namespace ants::util
