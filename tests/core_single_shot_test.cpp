#include "core/single_shot.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <variant>
#include <vector>

#include "core/known_k.h"
#include "core/uniform.h"
#include "sim/engine.h"
#include "sim/placement.h"
#include "sim/runner.h"
#include "util/math.h"

namespace ants::core {
namespace {

using sim::GoTo;
using sim::Op;
using sim::ReturnToSource;
using sim::SpiralFor;

TEST(SingleSweepKnownK, RejectsBadK) {
  EXPECT_THROW(SingleSweepKnownK(0), std::invalid_argument);
  EXPECT_NO_THROW(SingleSweepKnownK(1));
}

TEST(SingleSweepKnownK, ScheduleMatchesAkClosedForms) {
  // The single sweep reuses A_k's per-phase schedule exactly; only the
  // iteration ORDER differs. Pin both against the full algorithm.
  const SingleSweepKnownK sweep(8);
  const KnownKStrategy full(8);
  for (int i = 1; i <= 30; ++i) {
    EXPECT_EQ(sweep.spiral_budget(i), full.spiral_budget(i)) << i;
    EXPECT_EQ(sweep.ball_radius(i), full.ball_radius(i)) << i;
  }
}

TEST(SingleSweepKnownK, EachPhaseRunsExactlyOnce) {
  // Spiral budgets must be strictly increasing — 2^4/k, 2^6/k, 2^8/k, ... —
  // unlike A_k whose stages restart at phase 1.
  const SingleSweepKnownK strategy(1);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(21);
  std::vector<sim::Time> budgets;
  for (int trip = 0; trip < 12; ++trip) {
    (void)program->next(rng);  // GoTo
    budgets.push_back(std::get<SpiralFor>(program->next(rng)).duration);
    (void)program->next(rng);  // Return
  }
  for (std::size_t t = 0; t < budgets.size(); ++t) {
    EXPECT_EQ(budgets[t], util::pow2(2 * (static_cast<int>(t) + 1) + 2)) << t;
  }
}

TEST(SingleSweepKnownK, GoToTargetsTrackDoublingBalls) {
  const SingleSweepKnownK strategy(4);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(22);
  for (int i = 1; i <= 12; ++i) {
    const Op go = program->next(rng);
    ASSERT_TRUE(std::holds_alternative<GoTo>(go));
    EXPECT_LE(grid::l1_norm(std::get<GoTo>(go).target), util::pow2(i)) << i;
    (void)program->next(rng);
    (void)program->next(rng);
  }
}

TEST(SingleSweepKnownK, IdenticalProgramsForAllAgents) {
  const SingleSweepKnownK strategy(8);
  const auto p0 = strategy.make_program(sim::AgentContext{0, 1});
  const auto p1 = strategy.make_program(sim::AgentContext{3, 512});
  rng::Rng r0(5), r1(5);
  for (int i = 0; i < 45; ++i) {
    const Op a = p0->next(r0);
    const Op b = p1->next(r1);
    ASSERT_EQ(a.index(), b.index());
    if (const auto* go = std::get_if<GoTo>(&a)) {
      EXPECT_EQ(go->target, std::get<GoTo>(b).target);
    }
  }
}

TEST(SingleSweepUniform, ScheduleMatchesUniformClosedForms) {
  const SingleSweepUniform sweep(0.3);
  const UniformStrategy full(0.3);
  for (int i = 0; i <= 20; ++i) {
    for (int j = 0; j <= i; ++j) {
      EXPECT_EQ(sweep.ball_radius(i, j), full.ball_radius(i, j));
      EXPECT_EQ(sweep.spiral_budget(i, j), full.spiral_budget(i, j));
    }
  }
}

TEST(SingleSweepUniform, StagesNeverRepeat) {
  // Stage i contributes i+1 phases; the phase-j sequence must be
  // 0; 0,1; 0,1,2; ... with stage i strictly advancing (never resetting to
  // stage 0 as the big-stage loop of Algorithm 1 would).
  const SingleSweepUniform strategy(0.5);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(31);
  std::vector<sim::Time> budgets;
  for (int trip = 0; trip < 15; ++trip) {
    (void)program->next(rng);
    budgets.push_back(std::get<SpiralFor>(program->next(rng)).duration);
    (void)program->next(rng);
  }
  std::vector<sim::Time> expected;
  for (int i = 0; expected.size() < budgets.size(); ++i) {
    for (int j = 0; j <= i && expected.size() < budgets.size(); ++j) {
      expected.push_back(strategy.spiral_budget(i, j));
    }
  }
  EXPECT_EQ(budgets, expected);
}

TEST(SingleSweepKnownK, ConstantSuccessProbabilityWithinOptimalBudget) {
  // Section 5 remark: within c*(D + D^2/k), the sweep succeeds with
  // constant probability — not with certainty. At k = 16, D = 32 the
  // optimal budget is 96; give 8x that and expect a success rate clearly
  // inside (0, 1): bounded away from both failure and certainty.
  const SingleSweepKnownK strategy(16);
  sim::RunConfig config;
  config.trials = 300;
  config.seed = 4242;
  config.time_cap = 8 * (32 + 32 * 32 / 16);
  const sim::RunStats rs = sim::run_trials(strategy, 16, 32,
                                           sim::uniform_ring_placement(),
                                           config);
  EXPECT_GT(rs.success_rate, 0.35);
  EXPECT_LT(rs.success_rate, 0.9995);
}

TEST(SingleSweepKnownK, SucceedsEventuallyWithGenerousCap) {
  // Later phases keep hitting with ~constant probability, so a cap a few
  // doublings past the optimum pushes success close to 1.
  const SingleSweepKnownK strategy(8);
  sim::RunConfig config;
  config.trials = 200;
  config.seed = 911;
  config.time_cap = 4096 * (16 + 16 * 16 / 8);
  const sim::RunStats rs =
      sim::run_trials(strategy, 8, 16, sim::uniform_ring_placement(), config);
  EXPECT_GT(rs.success_rate, 0.95);
}

TEST(SingleSweepUniform, FindsWithConstantProbabilityUniformly) {
  // The uniform sweep too: within a polylog-inflated budget, constant
  // success probability without knowing k.
  const SingleSweepUniform strategy(0.5);
  sim::RunConfig config;
  config.trials = 200;
  config.seed = 515;
  config.time_cap = 64 * (16 + 16 * 16 / 4);
  const sim::RunStats rs =
      sim::run_trials(strategy, 4, 16, sim::uniform_ring_placement(), config);
  EXPECT_GT(rs.success_rate, 0.35);
}

TEST(SingleSweep, SweepIsNoSlowerPerPhaseButLessReliableThanFull) {
  // Head-to-head under the same tight budget: the full A_k re-runs early
  // phases (certainty), the sweep spends the same budget pushing further
  // out (constant probability). Under a TIGHT cap the sweep's success rate
  // must not collapse relative to the full algorithm's.
  const std::int64_t k = 8, d = 24;
  sim::RunConfig config;
  config.trials = 250;
  config.seed = 626;
  // E1 measures phi ~ 6-8 for A_k, so anything below ~8x optimal censors
  // most trials; 16x leaves both variants comfortably above the floor.
  config.time_cap = 16 * (d + d * d / k);

  const SingleSweepKnownK sweep(k);
  const KnownKStrategy full(k);
  const sim::RunStats rs_sweep = sim::run_trials(
      sweep, static_cast<int>(k), d, sim::uniform_ring_placement(), config);
  const sim::RunStats rs_full = sim::run_trials(
      full, static_cast<int>(k), d, sim::uniform_ring_placement(), config);
  EXPECT_GT(rs_sweep.success_rate, 0.25);
  EXPECT_GT(rs_full.success_rate, 0.25);
}

}  // namespace
}  // namespace ants::core
