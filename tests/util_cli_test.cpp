#include "util/cli.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ants::util {
namespace {

Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()), args.data());
}

TEST(Cli, EqualsForm) {
  Cli cli = make_cli({"--trials=500", "--eps=0.25", "--name=axis"});
  EXPECT_EQ(cli.get_int("trials", 0), 500);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0), 0.25);
  EXPECT_EQ(cli.get_string("name", ""), "axis");
  cli.finish();
}

TEST(Cli, SpaceForm) {
  Cli cli = make_cli({"--trials", "300", "--name", "ring"});
  EXPECT_EQ(cli.get_int("trials", 0), 300);
  EXPECT_EQ(cli.get_string("name", ""), "ring");
  cli.finish();
}

TEST(Cli, BareBooleans) {
  Cli cli = make_cli({"--quick", "--csv=out.csv"});
  EXPECT_TRUE(cli.get_bool("quick", false));
  EXPECT_FALSE(cli.get_bool("full", false));
  EXPECT_EQ(cli.get_string("csv", ""), "out.csv");
  cli.finish();
}

TEST(Cli, BooleanExplicitFalse) {
  Cli cli = make_cli({"--verbose=false", "--color=0"});
  EXPECT_FALSE(cli.get_bool("verbose", true));
  EXPECT_FALSE(cli.get_bool("color", true));
  cli.finish();
}

TEST(Cli, Defaults) {
  Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("trials", 123), 123);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.5), 0.5);
  EXPECT_EQ(cli.get_string("mode", "axis"), "axis");
  cli.finish();
}

TEST(Cli, IntList) {
  Cli cli = make_cli({"--ks=1,4,16,64"});
  const auto ks = cli.get_int_list("ks", {});
  ASSERT_EQ(ks.size(), 4u);
  EXPECT_EQ(ks[0], 1);
  EXPECT_EQ(ks[3], 64);
  cli.finish();
}

TEST(Cli, DoubleList) {
  Cli cli = make_cli({"--eps=0.1,0.3,1.0"});
  const auto eps = cli.get_double_list("eps", {});
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_DOUBLE_EQ(eps[1], 0.3);
  cli.finish();
}

TEST(Cli, ListDefaultsPassThrough) {
  Cli cli = make_cli({});
  const auto ks = cli.get_int_list("ks", {2, 8});
  ASSERT_EQ(ks.size(), 2u);
  EXPECT_EQ(ks[1], 8);
  cli.finish();
}

TEST(Cli, PositionalArguments) {
  Cli cli = make_cli({"alpha", "--x=1", "beta"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "alpha");
  EXPECT_EQ(cli.positional()[1], "beta");
  cli.get_int("x", 0);
  cli.finish();
}

TEST(Cli, UnknownFlagRejected) {
  Cli cli = make_cli({"--trials=10", "--tyop=5"});
  cli.get_int("trials", 0);
  EXPECT_THROW(cli.finish(), std::invalid_argument);
}

TEST(Cli, NegativeNumberIsValueNotFlag) {
  Cli cli = make_cli({"--offset", "-5"});
  EXPECT_EQ(cli.get_int("offset", 0), -5);
  cli.finish();
}

TEST(Cli, HasDetectsPresence) {
  Cli cli = make_cli({"--quick"});
  EXPECT_TRUE(cli.has("quick"));
  EXPECT_FALSE(cli.has("full"));
  cli.get_bool("quick", false);
  cli.finish();
}

}  // namespace
}  // namespace ants::util
