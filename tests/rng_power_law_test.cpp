#include "rng/power_law.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "stats/regression.h"

namespace ants::rng {
namespace {

TEST(PowerLaw, RejectsBadParameters) {
  EXPECT_THROW(DiscretePowerLaw(1.0), std::invalid_argument);
  EXPECT_THROW(DiscretePowerLaw(0.5), std::invalid_argument);
  EXPECT_THROW(DiscretePowerLaw(1.5, 0), std::invalid_argument);
}

TEST(PowerLaw, PmfNormalizesOnSmallSupport) {
  const DiscretePowerLaw law(1.5, 1000);
  double total = 0;
  for (std::int64_t r = 1; r <= 1000; ++r) total += law.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(law.pmf(0), 0.0);
  EXPECT_EQ(law.pmf(1001), 0.0);
}

TEST(PowerLaw, PmfMatchesDirectRatio) {
  const DiscretePowerLaw law(2.0, 100);
  // p(r) / p(1) = r^-2 exactly.
  for (std::int64_t r = 1; r <= 100; ++r) {
    EXPECT_NEAR(law.pmf(r) / law.pmf(1), std::pow(r, -2.0), 1e-12);
  }
}

TEST(PowerLaw, CdfMonotoneAndComplete) {
  const DiscretePowerLaw law(1.3, 4096);
  double prev = 0;
  for (std::int64_t r = 1; r <= 4096; r = r * 2) {
    const double c = law.cdf(r);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(law.cdf(4096), 1.0, 1e-9);
  EXPECT_EQ(law.cdf(0), 0.0);
}

TEST(PowerLaw, CdfAgreesWithPmfSums) {
  const DiscretePowerLaw law(1.7, 500);
  double acc = 0;
  for (std::int64_t r = 1; r <= 500; ++r) {
    acc += law.pmf(r);
    if (r % 37 == 0) {
      EXPECT_NEAR(law.cdf(r), acc, 1e-10) << r;
    }
  }
}

TEST(PowerLaw, SamplesRespectSupport) {
  const DiscretePowerLaw law(1.5, 64);
  Rng rng(100);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t r = law.sample(rng);
    EXPECT_GE(r, 1);
    EXPECT_LE(r, 64);
  }
}

TEST(PowerLaw, SamplingMatchesPmfOnSmallSupport) {
  // Frequency check against the exact pmf: n * p(r) +- 5 sigma.
  const DiscretePowerLaw law(1.5, 32);
  Rng rng(101);
  const int n = 300000;
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < n; ++i) ++counts[law.sample(rng)];
  for (std::int64_t r = 1; r <= 32; ++r) {
    const double expect = n * law.pmf(r);
    const double sigma = std::sqrt(expect * (1 - law.pmf(r)));
    EXPECT_NEAR(counts[r], expect, 5 * sigma + 1) << "r=" << r;
  }
}

TEST(PowerLaw, EmpiricalTailExponent) {
  // Survival function of samples should decay with exponent ~ -(e-1).
  const DiscretePowerLaw law(1.6, std::int64_t{1} << 30);
  Rng rng(102);
  const int n = 200000;
  std::vector<std::int64_t> samples;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(law.sample(rng));

  std::vector<double> xs, survival;
  for (std::int64_t threshold = 2; threshold <= 512; threshold *= 2) {
    int count = 0;
    for (const auto s : samples) count += (s > threshold) ? 1 : 0;
    if (count > 50) {
      xs.push_back(static_cast<double>(threshold));
      survival.push_back(static_cast<double>(count) / n);
    }
  }
  ASSERT_GE(xs.size(), 4u);
  const auto fit = stats::fit_power_law(xs, survival);
  EXPECT_NEAR(fit.slope, -0.6, 0.1);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(PowerLaw, OctaveWeightsConsistentAcrossExactIntegralBoundary) {
  // The same distribution built with different truncations must agree on
  // shared prefix probabilities (exercises exact + Euler-Maclaurin paths).
  const DiscretePowerLaw small(1.4, std::int64_t{1} << 19);
  const DiscretePowerLaw large(1.4, std::int64_t{1} << 26);
  // Ratios p(r)/p(1) are truncation-independent.
  for (const std::int64_t r : {std::int64_t{2}, std::int64_t{64},
                               std::int64_t{4096}, std::int64_t{1} << 18}) {
    EXPECT_NEAR(small.pmf(r) / small.pmf(1), large.pmf(r) / large.pmf(1),
                1e-12);
  }
  // Total weights differ only by the (tiny) tail beyond 2^19.
  EXPECT_GT(large.total_weight(), small.total_weight());
  EXPECT_NEAR(large.total_weight() / small.total_weight(), 1.0, 1e-2);
}

TEST(PowerLaw, HarmonicRadiusLawExponent) {
  // The harmonic algorithm uses exponent 1 + delta; sanity-check the mean
  // trip radius is finite/infinite as theory predicts: for exponent 1.8
  // (delta = 0.8) the mean over a big support converges to a small value.
  const DiscretePowerLaw law(1.8, std::int64_t{1} << 40);
  Rng rng(103);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(law.sample(rng));
  }
  EXPECT_LT(sum / n, 50.0);  // E[r] = zeta-ish constant, well under 50
}

}  // namespace
}  // namespace ants::rng
