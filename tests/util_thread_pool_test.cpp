#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ants::util {
namespace {

TEST(ParallelFor, RunsEveryItemExactlyOnce) {
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { ++hits[i]; }, 4);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, WorkerIdsAreDense) {
  constexpr std::size_t n = 64;
  const unsigned workers = parallel_workers(n, 4);
  std::vector<std::atomic<int>> by_worker(workers);
  parallel_for(
      n,
      [&](std::size_t /*i*/, unsigned worker) {
        ASSERT_LT(worker, workers);
        ++by_worker[worker];
      },
      4);
  int covered = 0;
  for (unsigned w = 0; w < workers; ++w) covered += by_worker[w].load();
  EXPECT_EQ(covered, static_cast<int>(n));
}

TEST(ParallelFor, FirstExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(
          16,
          [](std::size_t i) {
            if (i == 3) throw std::runtime_error("item 3 failed");
          },
          4),
      std::runtime_error);
}

// The cooperative-cancellation contract: once one item throws, workers stop
// claiming new items instead of draining the whole range first (a failing
// multi-hour sweep must surface its error promptly). In-flight items still
// finish, so with 8 workers an immediate failure executes at most a few
// claims per worker — far below the full range kept busy by the sleeps.
TEST(ParallelFor, ThrowStopsRemainingItemsEarly) {
  constexpr std::size_t n = 64;
  std::atomic<std::size_t> executed{0};
  const auto body = [&](std::size_t i) {
    if (i == 0) throw std::runtime_error("first item fails");
    ++executed;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  EXPECT_THROW(parallel_for(n, body, 8), std::runtime_error);
  EXPECT_LT(executed.load(), n / 2)
      << "workers drained the range after the failure instead of aborting";
}

}  // namespace
}  // namespace ants::util
