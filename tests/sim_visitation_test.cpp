#include "sim/visitation.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/trajectory.h"
#include "test_support.h"

namespace ants::sim {
namespace {

using ants::testing::ScriptedStrategy;
using grid::Point;

TEST(DyadicRadii, PowersOfTwo) {
  const auto radii = dyadic_radii(5);
  ASSERT_EQ(radii.size(), 6u);
  EXPECT_EQ(radii.front(), 1);
  EXPECT_EQ(radii.back(), 32);
}

TEST(Visitation, StraightWalkCountsPerAnnulus) {
  // Walk to (8, 0): visits x = 0..8 on the axis. With radii {1,2,4,8}:
  // annulus 0 (d<=1): (0,0),(1,0) -> 2; annulus 1 (1<d<=2): (2,0) -> 1;
  // annulus 2: (3,0),(4,0) -> 2; annulus 3: (5..8,0) -> 4.
  const ScriptedStrategy strategy({GoTo{{8, 0}}});
  rng::Rng rng(1);
  const auto report =
      record_visitation(strategy, AgentContext{}, rng, 8, {1, 2, 4, 8});
  ASSERT_EQ(report.distinct.size(), 4u);
  EXPECT_EQ(report.distinct[0], 2);
  EXPECT_EQ(report.distinct[1], 1);
  EXPECT_EQ(report.distinct[2], 2);
  EXPECT_EQ(report.distinct[3], 4);
  EXPECT_EQ(report.total_distinct, 9);
  EXPECT_EQ(report.steps, 8);
}

TEST(Visitation, HorizonTruncatesSegments) {
  const ScriptedStrategy strategy({GoTo{{100, 0}}});
  rng::Rng rng(2);
  const auto report =
      record_visitation(strategy, AgentContext{}, rng, 10, {1000});
  EXPECT_EQ(report.total_distinct, 11);  // x = 0..10
  EXPECT_EQ(report.steps, 10);
}

TEST(Visitation, RepeatVisitsCountOnce) {
  // Out and back twice: distinct nodes on the segment only counted once.
  const ScriptedStrategy strategy(
      {GoTo{{4, 0}}, ReturnToSource{}, GoTo{{4, 0}}, ReturnToSource{}});
  rng::Rng rng(3);
  const auto report =
      record_visitation(strategy, AgentContext{}, rng, 16, {64});
  EXPECT_EQ(report.total_distinct, 5);  // x = 0..4
  EXPECT_EQ(report.steps, 16);
}

TEST(Visitation, BeyondLastRadiusUncounted) {
  const ScriptedStrategy strategy({GoTo{{10, 0}}});
  rng::Rng rng(4);
  const auto report =
      record_visitation(strategy, AgentContext{}, rng, 10, {1, 2});
  EXPECT_EQ(report.distinct[0], 2);
  EXPECT_EQ(report.distinct[1], 1);
  EXPECT_EQ(report.total_distinct, 11);  // total still counts everything
}

TEST(Visitation, SpiralCoversBall) {
  // Spiral long enough to cover Chebyshev radius 3 from the source: visits
  // 49 nodes; L1-annulus counts must sum accordingly inside radius 6.
  const ScriptedStrategy strategy({SpiralFor{48}});
  rng::Rng rng(5);
  const auto report =
      record_visitation(strategy, AgentContext{}, rng, 48, {1, 2, 4, 8});
  EXPECT_EQ(report.total_distinct, 49);
  EXPECT_EQ(report.distinct[0] + report.distinct[1] + report.distinct[2] +
                report.distinct[3],
            49);
}

TEST(Visitation, Validation) {
  const ScriptedStrategy strategy({GoTo{{1, 0}}});
  rng::Rng rng(6);
  EXPECT_THROW(record_visitation(strategy, AgentContext{}, rng, 5, {}),
               std::invalid_argument);
  EXPECT_THROW(record_visitation(strategy, AgentContext{}, rng, 5, {4, 2}),
               std::invalid_argument);
  EXPECT_THROW(record_visitation(strategy, AgentContext{}, rng, 5, {2, 2}),
               std::invalid_argument);
  EXPECT_THROW(record_visitation(strategy, AgentContext{}, rng, -1, {2}),
               std::invalid_argument);
}

TEST(Trajectory, TraceMatchesScript) {
  const ScriptedStrategy strategy({GoTo{{2, 0}}, GoTo{{2, 2}}});
  rng::Rng rng(7);
  const auto trace = trace_program(strategy, AgentContext{}, rng, 4);
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[0].position, grid::kOrigin);
  EXPECT_EQ(trace[0].time, 0);
  EXPECT_EQ(trace[2].position, (Point{2, 0}));
  EXPECT_EQ(trace[4].position, (Point{2, 2}));
  EXPECT_EQ(trace[4].time, 4);
}

TEST(Trajectory, ConsecutiveTracePointsAdjacent) {
  const ScriptedStrategy strategy({GoTo{{3, 2}}, SpiralFor{20},
                                   ReturnToSource{}});
  rng::Rng rng(8);
  const auto trace = trace_program(strategy, AgentContext{}, rng, 60);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_TRUE(grid::adjacent(trace[i - 1].position, trace[i].position)) << i;
    EXPECT_EQ(trace[i].time, trace[i - 1].time + 1) << i;
  }
}

TEST(Trajectory, RenderMarksSourceTreasureAndPath) {
  const ScriptedStrategy strategy({GoTo{{2, 0}}});
  rng::Rng rng(9);
  const auto trace = trace_program(strategy, AgentContext{}, rng, 2);
  const std::string img = render_trace(trace, 3, {2, 1});
  EXPECT_NE(img.find('S'), std::string::npos);
  EXPECT_NE(img.find('T'), std::string::npos);
  EXPECT_NE(img.find('#'), std::string::npos);
  // 7 rows of 7 chars + newlines.
  EXPECT_EQ(img.size(), 7u * 8u);
}

TEST(Trajectory, RenderValidation) {
  EXPECT_THROW(render_trace({}, 0, grid::kOrigin), std::invalid_argument);
}

}  // namespace
}  // namespace ants::sim
