// The batch trial executor (sim/batch/).
//
// The contract under test is byte-identity: for every strategy family,
// environment shape, and SIMD dispatch level this machine supports,
// BatchRunner::run_one must reproduce sim::run_trial EXACTLY — same doubles
// bit for bit, same finder/target tie-breaks, same crash counts. The kernel
// unit tests pin the three primitives' scalar-equivalence properties
// (lowest-index argmin ties, in-order occupancy find, candidate supersets)
// at every level, including the non-multiple-of-width tails.
#include "sim/batch/batch.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/random_walk.h"
#include "core/harmonic.h"
#include "core/known_k.h"
#include "plane/strategies.h"
#include "rng/rng.h"
#include "sim/batch/kernels.h"
#include "sim/batch/simd.h"
#include "sim/trial.h"
#include "test_support.h"

namespace ants::sim::batch {
namespace {

/// Every dispatch level this machine can actually run.
std::vector<SimdLevel> testable_levels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (detected_simd_level() >= SimdLevel::kSse2) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (detected_simd_level() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

/// Restores the active level when a test that forces levels exits.
struct LevelGuard {
  ~LevelGuard() { force_simd_level(detected_simd_level()); }
};

#define EXPECT_SAME_RESULT(expected, actual)                       \
  do {                                                             \
    EXPECT_EQ((expected).time, (actual).time);                     \
    EXPECT_EQ((expected).found, (actual).found);                   \
    EXPECT_EQ((expected).finder, (actual).finder);                 \
    EXPECT_EQ((expected).first_target, (actual).first_target);     \
    EXPECT_EQ((expected).segments, (actual).segments);             \
    EXPECT_EQ((expected).last_start, (actual).last_start);         \
    EXPECT_EQ((expected).from_last_start, (actual).from_last_start); \
    EXPECT_EQ((expected).crashed, (actual).crashed);               \
  } while (0)

// --- kernel unit tests -----------------------------------------------------

TEST(BatchKernels, ArgminI64MatchesScalarWithLowestIndexTies) {
  rng::Rng rng(20260808);
  const Kernels& scalar = kernels_for(SimdLevel::kScalar);
  for (const SimdLevel level : testable_levels()) {
    const Kernels& k = kernels_for(level);
    for (std::size_t n = 1; n <= 40; ++n) {
      for (int rep = 0; rep < 20; ++rep) {
        std::vector<std::int64_t> v(n);
        for (auto& x : v) {
          // Few distinct values => plenty of exact ties.
          x = rng.uniform_int(-2, 2);
        }
        EXPECT_EQ(scalar.argmin_i64(v.data(), n), k.argmin_i64(v.data(), n))
            << simd_level_name(level) << " n=" << n;
      }
    }
  }
}

TEST(BatchKernels, ArgminF64MatchesScalarWithLowestIndexTies) {
  rng::Rng rng(99);
  const Kernels& scalar = kernels_for(SimdLevel::kScalar);
  for (const SimdLevel level : testable_levels()) {
    const Kernels& k = kernels_for(level);
    for (std::size_t n = 1; n <= 40; ++n) {
      for (int rep = 0; rep < 20; ++rep) {
        std::vector<double> v(n);
        for (auto& x : v) x = static_cast<double>(rng.uniform_int(0, 3));
        EXPECT_EQ(scalar.argmin_f64(v.data(), n), k.argmin_f64(v.data(), n))
            << simd_level_name(level) << " n=" << n;
      }
    }
  }
}

TEST(BatchKernels, ArgminHandlesSentinelArrays) {
  const std::int64_t never = kNeverTime;
  const std::vector<std::int64_t> all_never(11, never);
  std::vector<std::int64_t> one_live(11, never);
  one_live[7] = 42;
  const std::vector<double> all_pnever(9, 1e300);
  for (const SimdLevel level : testable_levels()) {
    const Kernels& k = kernels_for(level);
    EXPECT_EQ(k.argmin_i64(all_never.data(), all_never.size()), 0u);
    EXPECT_EQ(k.argmin_i64(one_live.data(), one_live.size()), 7u);
    EXPECT_EQ(k.argmin_f64(all_pnever.data(), all_pnever.size()), 0u);
  }
}

TEST(BatchKernels, FindPointReturnsFirstMatchInOrder) {
  rng::Rng rng(7);
  const Kernels& scalar = kernels_for(SimdLevel::kScalar);
  for (const SimdLevel level : testable_levels()) {
    const Kernels& k = kernels_for(level);
    for (std::size_t n = 1; n <= 24; ++n) {
      for (int rep = 0; rep < 40; ++rep) {
        std::vector<std::int64_t> xs(n), ys(n);
        for (std::size_t i = 0; i < n; ++i) {
          xs[i] = rng.uniform_int(-1, 1);
          ys[i] = rng.uniform_int(-1, 1);
        }
        const std::int64_t px = rng.uniform_int(-1, 1);
        const std::int64_t py = rng.uniform_int(-1, 1);
        EXPECT_EQ(scalar.find_point(xs.data(), ys.data(), n, px, py),
                  k.find_point(xs.data(), ys.data(), n, px, py))
            << simd_level_name(level) << " n=" << n;
      }
    }
  }
}

TEST(BatchKernels, FindPointMissReturnsNpos) {
  const std::vector<std::int64_t> xs = {1, 2, 3, 4, 5};
  const std::vector<std::int64_t> ys = {1, 2, 3, 4, 5};
  for (const SimdLevel level : testable_levels()) {
    const Kernels& k = kernels_for(level);
    EXPECT_EQ(k.find_point(xs.data(), ys.data(), xs.size(), 3, 4), kNpos);
    EXPECT_EQ(k.find_point(xs.data(), ys.data(), xs.size(), 4, 4), 3u);
  }
}

TEST(BatchKernels, LineCandidatesMatchScalarExactly) {
  rng::Rng rng(1234);
  const Kernels& scalar = kernels_for(SimdLevel::kScalar);
  for (const SimdLevel level : testable_levels()) {
    const Kernels& k = kernels_for(level);
    for (std::size_t n = 1; n <= 21; ++n) {
      for (int rep = 0; rep < 40; ++rep) {
        std::vector<double> tx(n), ty(n);
        for (std::size_t i = 0; i < n; ++i) {
          tx[i] = rng.uniform_real(-20.0, 20.0);
          ty[i] = rng.uniform_real(-20.0, 20.0);
        }
        const double fx = rng.uniform_real(-5.0, 5.0);
        const double fy = rng.uniform_real(-5.0, 5.0);
        const double ang = rng.angle();
        const double ux = std::cos(ang), uy = std::sin(ang);
        const double eps = rng.uniform_real(0.5, 1.5);
        std::vector<std::uint32_t> want(n), got(n);
        const std::size_t nw =
            scalar.line_candidates(tx.data(), ty.data(), n, fx, fy, ux, uy,
                                   eps, want.data());
        const std::size_t ng = k.line_candidates(tx.data(), ty.data(), n, fx,
                                                 fy, ux, uy, eps, got.data());
        ASSERT_EQ(nw, ng) << simd_level_name(level) << " n=" << n;
        for (std::size_t i = 0; i < nw; ++i) {
          EXPECT_EQ(want[i], got[i]) << simd_level_name(level) << " n=" << n;
        }
      }
    }
  }
}

TEST(BatchKernels, LineCandidatesAreSupersetOfSightings) {
  // Every target the scalar hit test sights must survive the prefilter.
  rng::Rng rng(555);
  for (const SimdLevel level : testable_levels()) {
    const Kernels& k = kernels_for(level);
    for (int rep = 0; rep < 200; ++rep) {
      const plane::Vec2 from{rng.uniform_real(-5.0, 5.0),
                             rng.uniform_real(-5.0, 5.0)};
      const plane::Vec2 to{rng.uniform_real(-15.0, 15.0),
                           rng.uniform_real(-15.0, 15.0)};
      const plane::LineMove line{from, to};
      const plane::Vec2 d = to - from;
      const double len = d.norm();
      if (len == 0.0) continue;
      const double inv = 1.0 / len;
      const std::size_t n = 9;
      std::vector<double> tx(n), ty(n);
      for (std::size_t i = 0; i < n; ++i) {
        tx[i] = rng.uniform_real(-15.0, 15.0);
        ty[i] = rng.uniform_real(-15.0, 15.0);
      }
      std::vector<std::uint32_t> cand(n);
      const std::size_t nc =
          k.line_candidates(tx.data(), ty.data(), n, from.x, from.y,
                            d.x * inv, d.y * inv, 1.0, cand.data());
      for (std::size_t i = 0; i < n; ++i) {
        const auto hit =
            plane::line_first_sighting(line, {tx[i], ty[i]}, 1.0);
        if (!hit) continue;
        bool present = false;
        for (std::size_t c = 0; c < nc; ++c) present |= (cand[c] == i);
        EXPECT_TRUE(present) << simd_level_name(level) << " target " << i;
      }
    }
  }
}

// --- executor conformance --------------------------------------------------

/// Runs `trials` trials of strategy/env-draw under both executors at every
/// supported dispatch level and demands byte-identical results.
void expect_conformance(const TrialStrategy& strategy, int k,
                        const std::function<TrialEnvironment(const rng::Rng&)>&
                            env_of_trial,
                        const EngineConfig& config, int trials,
                        std::uint64_t seed) {
  LevelGuard guard;
  for (const SimdLevel level : testable_levels()) {
    force_simd_level(level);
    BatchRunner runner(strategy, k, config);
    ASSERT_EQ(runner.level(), level);
    for (int t = 0; t < trials; ++t) {
      const rng::Rng trial_rng(
          rng::mix_seed(seed, static_cast<std::uint64_t>(t)));
      const TrialEnvironment env = env_of_trial(trial_rng);
      const TrialResult want = run_trial(strategy, k, env, trial_rng, config);
      const TrialResult got = runner.run_one(env, trial_rng);
      EXPECT_SAME_RESULT(want, got);
      if (::testing::Test::HasFailure()) {
        FAIL() << "diverged at level " << simd_level_name(level) << " trial "
               << t;
      }
    }
  }
}

TrialEnvironment base_env(std::vector<grid::Point> targets) {
  TrialEnvironment env;
  env.targets = std::move(targets);
  return env;
}

TEST(BatchRunnerSegment, MatchesRunTrialAcrossEnvironmentsAndLevels) {
  const core::KnownKStrategy known(5);
  const core::HarmonicStrategy harmonic(0.3);
  TrialStrategy sk;
  sk.segment = &known;
  TrialStrategy sh;
  sh.segment = &harmonic;
  EngineConfig config;
  config.time_cap = 200'000;

  const std::vector<grid::Point> targets = {{11, -5}, {-7, 3}};
  const auto sync = [&](const rng::Rng&) { return base_env(targets); };
  const auto drawn = [&](const rng::Rng& trial_rng) {
    return draw_environment(5, targets, StaggeredStart(7),
                            ExponentialLifetime(500.0), trial_rng);
  };
  const auto doa = [&](const rng::Rng& trial_rng) {
    return draw_environment(5, targets, UniformRandomStart(20), DoaCrash(0.4),
                            trial_rng);
  };
  expect_conformance(sk, 5, sync, config, 40, 101);
  expect_conformance(sk, 5, drawn, config, 40, 102);
  expect_conformance(sh, 5, drawn, config, 40, 103);
  expect_conformance(sh, 5, doa, config, 40, 104);
}

TEST(BatchRunnerSegment, OriginTargetAndAllDoaEdgeCases) {
  const core::KnownKStrategy known(3);
  TrialStrategy s;
  s.segment = &known;
  EngineConfig config;
  config.time_cap = 10'000;

  // Origin in the target set, mixed DOA agents.
  const auto origin_env = [&](const rng::Rng&) {
    TrialEnvironment env = base_env({{5, 5}, grid::kOrigin});
    env.starts = {4, 2, 9};
    env.lifetimes = {0, 100, kNeverTime};
    return env;
  };
  // Everybody dead on arrival.
  const auto all_doa = [&](const rng::Rng&) {
    TrialEnvironment env = base_env({{3, 1}});
    env.lifetimes = {0, 0, 0};
    return env;
  };
  expect_conformance(s, 3, origin_env, config, 8, 7);
  expect_conformance(s, 3, all_doa, config, 8, 8);
}

TEST(BatchRunnerStep, MatchesRunTrialAcrossEnvironmentsAndLevels) {
  const baselines::RandomWalkStrategy rw;
  TrialStrategy s;
  s.step = &rw;
  EngineConfig config;
  config.time_cap = 3'000;

  const std::vector<grid::Point> targets = {{4, 0}, {0, -4}};
  const auto sync = [&](const rng::Rng&) { return base_env(targets); };
  const auto drawn = [&](const rng::Rng& trial_rng) {
    return draw_environment(4, targets, StaggeredStart(2), FixedLifetime(800),
                            trial_rng);
  };
  const auto doa = [&](const rng::Rng& trial_rng) {
    return draw_environment(4, targets, SyncStart(), DoaCrash(0.5),
                            trial_rng);
  };
  expect_conformance(s, 4, sync, config, 30, 201);
  expect_conformance(s, 4, drawn, config, 30, 202);
  expect_conformance(s, 4, doa, config, 30, 203);
}

TEST(BatchRunnerPlane, MatchesRunTrialAcrossEnvironmentsAndLevels) {
  const plane::PlaneKnownKStrategy known(4);
  const plane::PlaneHarmonicStrategy harmonic(0.3);
  TrialStrategy sk;
  sk.plane = &known;
  TrialStrategy sh;
  sh.plane = &harmonic;
  EngineConfig config;
  config.time_cap = 1'000'000;

  const auto plane_env = [&](std::vector<plane::Vec2> targets) {
    TrialEnvironment env;
    env.plane_targets = std::move(targets);
    return env;
  };
  const std::vector<plane::Vec2> targets = {{12.0, -3.0}, {-6.0, 8.0}};
  const auto sync = [&](const rng::Rng&) { return plane_env(targets); };
  const auto drawn = [&](const rng::Rng& trial_rng) {
    return draw_environment(4, plane_env(targets), StaggeredStart(5),
                            ExponentialLifetime(300.0), trial_rng);
  };
  const auto doa = [&](const rng::Rng& trial_rng) {
    return draw_environment(4, plane_env(targets), UniformRandomStart(9),
                            DoaCrash(0.4), trial_rng);
  };
  expect_conformance(sk, 4, sync, config, 25, 301);
  expect_conformance(sk, 4, drawn, config, 25, 302);
  expect_conformance(sh, 4, drawn, config, 25, 303);
  expect_conformance(sh, 4, doa, config, 25, 304);
}

TEST(BatchRunnerPlane, HomeTargetAndAllDoaEdgeCases) {
  const plane::PlaneKnownKStrategy known(3);
  TrialStrategy s;
  s.plane = &known;
  EngineConfig config;
  config.time_cap = 100'000;

  // One target inside the home sight disc, one agent dead on arrival.
  const auto home_env = [&](const rng::Rng&) {
    TrialEnvironment env;
    env.plane_targets = {{20.0, 0.0}, {0.3, -0.4}};
    env.starts = {6, 1, 3};
    env.lifetimes = {kNeverTime, 0, 500};
    return env;
  };
  const auto all_doa = [&](const rng::Rng&) {
    TrialEnvironment env;
    env.plane_targets = {{9.0, 9.0}};
    env.lifetimes = {0, 0, 0};
    return env;
  };
  expect_conformance(s, 3, home_env, config, 6, 401);
  expect_conformance(s, 3, all_doa, config, 6, 402);
}

TEST(BatchRunner, ReusedAcrossTrialsDoesNotLeakState) {
  // One runner fed alternating environments must match fresh scalar runs —
  // the workspaces are reused, the semantics must not be.
  const core::HarmonicStrategy harmonic(0.5);
  TrialStrategy s;
  s.segment = &harmonic;
  EngineConfig config;
  config.time_cap = 100'000;
  LevelGuard guard;
  force_simd_level(detected_simd_level());
  BatchRunner runner(s, 4, config);
  for (int t = 0; t < 60; ++t) {
    const rng::Rng trial_rng(rng::mix_seed(42, static_cast<std::uint64_t>(t)));
    TrialEnvironment env = base_env({{9 + (t % 3), -2}});
    if (t % 2 == 1) {
      env = draw_environment(4, std::move(env.targets), StaggeredStart(3),
                             ExponentialLifetime(200.0), trial_rng);
    }
    const TrialResult want = run_trial(s, 4, env, trial_rng, config);
    const TrialResult got = runner.run_one(env, trial_rng);
    EXPECT_SAME_RESULT(want, got);
  }
}

TEST(BatchRunner, ConstructorRejectsBadArguments) {
  const core::KnownKStrategy known(2);
  TrialStrategy none;
  EXPECT_THROW(BatchRunner(none, 2, {}), std::invalid_argument);
  TrialStrategy s;
  s.segment = &known;
  EXPECT_THROW(BatchRunner(s, 0, {}), std::invalid_argument);
}

TEST(BatchSimd, EnvAndForceClampToDetected) {
  LevelGuard guard;
  force_simd_level(SimdLevel::kAvx2);
  EXPECT_LE(static_cast<int>(active_simd_level()),
            static_cast<int>(detected_simd_level()));
  force_simd_level(SimdLevel::kScalar);
  EXPECT_EQ(active_simd_level(), SimdLevel::kScalar);
}

}  // namespace
}  // namespace ants::sim::batch
