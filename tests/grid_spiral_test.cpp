#include "grid/spiral.h"

#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <set>

#include "util/math.h"

namespace ants::grid {
namespace {

TEST(Spiral, FirstPointsMatchLayout) {
  // Hand-computed prefix per the documented convention.
  const Point expected[] = {
      {0, 0},                              // 0
      {1, 0},  {1, 1},                     // ring 1, east side up
      {0, 1},  {-1, 1},                    // north side west
      {-1, 0}, {-1, -1},                   // west side down
      {0, -1}, {1, -1},                    // south side east
      {2, -1}, {2, 0},  {2, 1}, {2, 2},    // ring 2 east side
  };
  for (std::size_t n = 0; n < std::size(expected); ++n) {
    EXPECT_EQ(spiral_point(static_cast<std::int64_t>(n)), expected[n]) << n;
  }
}

TEST(Spiral, ConsecutivePointsAdjacent) {
  Point prev = spiral_point(0);
  for (std::int64_t n = 1; n <= 200000; ++n) {
    const Point p = spiral_point(n);
    ASSERT_TRUE(adjacent(prev, p)) << "at n=" << n;
    prev = p;
  }
}

TEST(Spiral, IndexInvertsPointMillionSweep) {
  for (std::int64_t n = 0; n <= 1000000; ++n) {
    ASSERT_EQ(spiral_index(spiral_point(n)), n) << n;
  }
}

TEST(Spiral, PointInvertsIndexOverWindow) {
  for (std::int64_t x = -60; x <= 60; ++x) {
    for (std::int64_t y = -60; y <= 60; ++y) {
      const Point p{x, y};
      ASSERT_EQ(spiral_point(spiral_index(p)), p) << x << "," << y;
    }
  }
}

TEST(Spiral, RingBoundaries) {
  for (std::int64_t r = 1; r <= 500; ++r) {
    const std::int64_t first = (2 * r - 1) * (2 * r - 1);
    const std::int64_t last = (2 * r + 1) * (2 * r + 1) - 1;
    EXPECT_EQ(spiral_point(first), (Point{r, -r + 1})) << r;
    EXPECT_EQ(spiral_point(last), (Point{r, -r})) << r;
    EXPECT_EQ(linf_norm(spiral_point(first - 1)), r - 1) << r;
    EXPECT_EQ(linf_norm(spiral_point(last + 1)), r + 1) << r;
  }
}

TEST(Spiral, EnumerationIsBijectiveOnPrefix) {
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  const std::int64_t n = spiral_length_for_radius(40) + 1;
  for (std::int64_t i = 0; i < n; ++i) {
    const Point p = spiral_point(i);
    ASSERT_TRUE(seen.insert({p.x, p.y}).second) << i;
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), n);
}

TEST(Spiral, LengthForRadiusCoversExactly) {
  for (std::int64_t r = 0; r <= 60; ++r) {
    const std::int64_t t = spiral_length_for_radius(r);
    // After t steps (indices 0..t) the full Chebyshev ball of radius r is
    // visited...
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    for (std::int64_t i = 0; i <= t; ++i) {
      const Point p = spiral_point(i);
      if (linf_norm(p) <= r) seen.insert({p.x, p.y});
    }
    EXPECT_EQ(static_cast<std::int64_t>(seen.size()), (2 * r + 1) * (2 * r + 1))
        << r;
    // ...and not one step earlier.
    if (r >= 1) {
      EXPECT_EQ(linf_norm(spiral_point(t)), r);
    }
  }
}

TEST(Spiral, CoverageRadiusInvertsLength) {
  for (std::int64_t r = 0; r <= 1000; ++r) {
    EXPECT_EQ(spiral_coverage_radius(spiral_length_for_radius(r)), r) << r;
    if (r >= 1) {
      EXPECT_EQ(spiral_coverage_radius(spiral_length_for_radius(r) - 1), r - 1)
          << r;
    }
  }
}

TEST(Spiral, CoverageRadiusMonotone) {
  std::int64_t prev = 0;
  for (std::int64_t t = 0; t <= 20000; ++t) {
    const std::int64_t r = spiral_coverage_radius(t);
    EXPECT_GE(r, prev);
    EXPECT_LE(r - prev, 1);
    prev = r;
  }
}

TEST(Spiral, CoverageRadiusIsSqrtOverTwo) {
  // The paper assumes coverage radius sqrt(t)/2; ours is sqrt(t)/2 - O(1)
  // with the O(1) deficit strictly below 2 cells. Check the exact additive
  // band (a ratio test would be vacuous at small t where the deficit is a
  // visible fraction of the radius).
  for (std::int64_t t = 1; t <= 1000000; t = t * 3 + 1) {
    const double half_sqrt = std::sqrt(static_cast<double>(t)) / 2;
    const auto r = static_cast<double>(spiral_coverage_radius(t));
    EXPECT_GE(r, half_sqrt - 2.0) << t;
    EXPECT_LE(r, half_sqrt) << t;
  }
}

TEST(Spiral, FarPointsReturnOverflowSentinel) {
  const Point far{kMaxSpiralRadius + 1, 0};
  EXPECT_EQ(spiral_index(far), kSpiralIndexOverflow);
  const Point farther{std::int64_t{1} << 45, std::int64_t{1} << 44};
  EXPECT_EQ(spiral_index(farther), kSpiralIndexOverflow);
  // At the boundary the index is still exact and fits.
  const Point edge{kMaxSpiralRadius, 0};
  EXPECT_LT(spiral_index(edge), kSpiralIndexOverflow);
  EXPECT_EQ(spiral_point(spiral_index(edge)), edge);
}

TEST(Spiral, HugeIndexStillConsistent) {
  // Round-trip near 2^60 (far beyond any realizable duration's use of
  // spiral_point for end positions).
  const std::int64_t n = (std::int64_t{1} << 60) + 987654321;
  const Point p = spiral_point(n);
  EXPECT_EQ(spiral_index(p), n);
}

}  // namespace
}  // namespace ants::grid
