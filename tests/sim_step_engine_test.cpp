#include "sim/step_engine.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "baselines/random_walk.h"

namespace ants::sim {
namespace {

using grid::Point;

/// Deterministic stepper marching east forever.
class EastStrategy final : public StepStrategy {
 public:
  std::string name() const override { return "east"; }
  std::unique_ptr<StepProgram> make_program(AgentContext) const override {
    class P final : public StepProgram {
      Point step(rng::Rng&, Point current) override {
        return current + Point{1, 0};
      }
    };
    return std::make_unique<P>();
  }
};

/// Agent i marches in direction i%4 (for multi-agent coverage tests).
class FanOutStrategy final : public StepStrategy {
 public:
  std::string name() const override { return "fan"; }
  std::unique_ptr<StepProgram> make_program(AgentContext ctx) const override {
    class P final : public StepProgram {
     public:
      explicit P(int dir) : dir_(dir) {}
      Point step(rng::Rng&, Point current) override {
        return current + grid::kDirections[dir_];
      }

     private:
      int dir_;
    };
    return std::make_unique<P>(ctx.agent_index % 4);
  }
};

TEST(StepEngine, DeterministicMarchHitsAtDistance) {
  rng::Rng rng(1);
  const SearchResult r =
      run_step_search(EastStrategy{}, 1, {25, 0}, rng, 1000);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 25);
  EXPECT_EQ(r.finder, 0);
}

TEST(StepEngine, MissesOffAxisTarget) {
  rng::Rng rng(2);
  const SearchResult r = run_step_search(EastStrategy{}, 1, {5, 1}, rng, 100);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.time, 100);
}

TEST(StepEngine, TreasureAtSourceInstant) {
  rng::Rng rng(3);
  const SearchResult r =
      run_step_search(EastStrategy{}, 2, grid::kOrigin, rng, 10);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 0);
}

TEST(StepEngine, FanOutFinderIdentity) {
  rng::Rng rng(4);
  // Treasure north: only agent with direction (0,1) (index 1 mod 4) hits.
  const SearchResult r =
      run_step_search(FanOutStrategy{}, 4, {0, 12}, rng, 100);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 12);
  EXPECT_EQ(r.finder, 1);
}

TEST(StepEngine, RequiresFiniteCap) {
  rng::Rng rng(5);
  EXPECT_THROW(
      run_step_search(EastStrategy{}, 1, {1, 0}, rng, kNeverTime),
      std::invalid_argument);
}

TEST(StepEngine, RejectsNonPositiveK) {
  rng::Rng rng(6);
  EXPECT_THROW(run_step_search(EastStrategy{}, 0, {1, 0}, rng, 10),
               std::invalid_argument);
}

TEST(StepEngine, RandomWalkFindsAdjacentTreasureUsually) {
  // With 8 walkers and a treasure at distance 1, most trials succeed within
  // a 10k-step cap (the walk is recurrent in the "visits neighborhood"
  // sense; only the EXPECTED time is infinite).
  const baselines::RandomWalkStrategy rw;
  int found = 0;
  for (int trial = 0; trial < 50; ++trial) {
    rng::Rng rng(1000 + static_cast<std::uint64_t>(trial));
    const SearchResult r = run_step_search(rw, 8, {1, 0}, rng, 10000);
    found += r.found ? 1 : 0;
  }
  EXPECT_GE(found, 45);
}

TEST(StepEngine, RandomWalkDeterministicPerSeed) {
  const baselines::RandomWalkStrategy rw;
  rng::Rng a(99), b(99);
  const SearchResult ra = run_step_search(rw, 3, {2, 1}, a, 5000);
  const SearchResult rb = run_step_search(rw, 3, {2, 1}, b, 5000);
  EXPECT_EQ(ra.found, rb.found);
  EXPECT_EQ(ra.time, rb.time);
  EXPECT_EQ(ra.finder, rb.finder);
}

}  // namespace
}  // namespace ants::sim
