#include "sim/segment.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "grid/spiral.h"
#include "util/sat.h"

namespace ants::sim {
namespace {

using grid::Point;

TEST(WalkSegmentTest, DurationEndAndHits) {
  const Segment seg{WalkSegment({0, 0}, {5, 3})};
  EXPECT_EQ(duration(seg), 8);
  EXPECT_EQ(end_position(seg), (Point{5, 3}));
  EXPECT_EQ(hit_offset(seg, {0, 0}).value(), 0);
  EXPECT_EQ(hit_offset(seg, {5, 3}).value(), 8);
  EXPECT_FALSE(hit_offset(seg, {6, 3}).has_value());
  EXPECT_FALSE(hit_offset(seg, {-1, 0}).has_value());
}

TEST(WalkSegmentTest, HitOffsetsMatchEnumeration) {
  const Segment seg{WalkSegment({2, -1}, {-4, 6})};
  std::map<std::pair<std::int64_t, std::int64_t>, Time> visits;
  for_each_visit(seg, duration(seg), [&](Point p, Time t) {
    visits.emplace(std::make_pair(p.x, p.y), t);
  });
  EXPECT_EQ(static_cast<Time>(visits.size()), duration(seg) + 1);
  for (const auto& [xy, t] : visits) {
    const Point p{xy.first, xy.second};
    EXPECT_EQ(hit_offset(seg, p).value(), t);
  }
}

TEST(SpiralSegmentTest, DurationEndAndHits) {
  const Segment seg{SpiralSegment{{10, 10}, 24}};
  EXPECT_EQ(duration(seg), 24);
  EXPECT_EQ(end_position(seg), (Point{10, 10} + grid::spiral_point(24)));
  // Center is offset 0.
  EXPECT_EQ(hit_offset(seg, {10, 10}).value(), 0);
  // Node at spiral index 8 relative to the center.
  EXPECT_EQ(hit_offset(seg, Point{10, 10} + grid::spiral_point(8)).value(), 8);
  // Index 24 included, 25 not.
  EXPECT_TRUE(
      hit_offset(seg, Point{10, 10} + grid::spiral_point(24)).has_value());
  EXPECT_FALSE(
      hit_offset(seg, Point{10, 10} + grid::spiral_point(25)).has_value());
}

TEST(SpiralSegmentTest, FarTargetNoOverflow) {
  const Segment seg{SpiralSegment{{0, 0}, util::kTimeCap}};
  EXPECT_FALSE(
      hit_offset(seg, {std::int64_t{1} << 45, std::int64_t{1} << 44})
          .has_value());
  // But any target within coverage hits.
  EXPECT_TRUE(hit_offset(seg, {12345, -6789}).has_value());
}

TEST(SpiralSegmentTest, VisitEnumerationMatchesClosedForm) {
  const Segment seg{SpiralSegment{{-3, 7}, 49}};
  Time steps = 0;
  for_each_visit(seg, duration(seg), [&](Point p, Time t) {
    EXPECT_EQ(hit_offset(seg, p).value(), t);
    ++steps;
  });
  EXPECT_EQ(steps, duration(seg) + 1);
}

TEST(PathSegmentTest, DurationEndAndHits) {
  const std::vector<Point> steps{{1, 0}, {1, 1}, {2, 1}};
  const Segment seg{PathSegment{{0, 0}, steps}};
  EXPECT_EQ(duration(seg), 3);
  EXPECT_EQ(end_position(seg), (Point{2, 1}));
  EXPECT_EQ(hit_offset(seg, {0, 0}).value(), 0);
  EXPECT_EQ(hit_offset(seg, {1, 1}).value(), 2);
  EXPECT_EQ(hit_offset(seg, {2, 1}).value(), 3);
  EXPECT_FALSE(hit_offset(seg, {5, 5}).has_value());
}

TEST(PathSegmentTest, EmptyPathIsZeroDuration) {
  const Segment seg{PathSegment{{4, 4}, {}}};
  EXPECT_EQ(duration(seg), 0);
  EXPECT_EQ(end_position(seg), (Point{4, 4}));
  EXPECT_EQ(hit_offset(seg, {4, 4}).value(), 0);
}

TEST(PathSegmentTest, FirstVisitWinsOnRevisit) {
  // Path that revisits a node: hit_offset must return the FIRST visit.
  const std::vector<Point> steps{{1, 0}, {0, 0}, {1, 0}};
  const Segment seg{PathSegment{{0, 0}, steps}};
  EXPECT_EQ(hit_offset(seg, {1, 0}).value(), 1);
  EXPECT_EQ(hit_offset(seg, {0, 0}).value(), 0);
}

TEST(ForEachVisit, RespectsMaxOffset) {
  const Segment seg{WalkSegment({0, 0}, {10, 0})};
  Time count = 0;
  for_each_visit(seg, 4, [&](Point, Time t) {
    EXPECT_LE(t, 4);
    ++count;
  });
  EXPECT_EQ(count, 5);

  const Segment sp{SpiralSegment{{0, 0}, 100}};
  count = 0;
  for_each_visit(sp, 7, [&](Point, Time) { ++count; });
  EXPECT_EQ(count, 8);

  const Segment pa{PathSegment{{0, 0}, {{0, 1}, {0, 2}, {0, 3}}}};
  count = 0;
  for_each_visit(pa, 2, [&](Point, Time) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(Segment, DefaultConstructible) {
  Segment seg{};
  EXPECT_EQ(duration(seg), 0);
  EXPECT_EQ(end_position(seg), grid::kOrigin);
}

}  // namespace
}  // namespace ants::sim
