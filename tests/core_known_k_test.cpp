#include "core/known_k.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <variant>
#include <vector>

#include "core/params.h"
#include "sim/engine.h"
#include "sim/placement.h"
#include "sim/runner.h"
#include "util/math.h"
#include "util/sat.h"

namespace ants::core {
namespace {

using sim::GoTo;
using sim::Op;
using sim::ReturnToSource;
using sim::SpiralFor;

TEST(KnownK, RejectsBadK) {
  EXPECT_THROW(KnownKStrategy(0), std::invalid_argument);
  EXPECT_THROW(KnownKStrategy(-3), std::invalid_argument);
  EXPECT_NO_THROW(KnownKStrategy(1));
}

TEST(KnownK, SpiralBudgetMatchesPaper) {
  // t_i = 2^(2i+2) / k.
  const KnownKStrategy s4(4);
  EXPECT_EQ(s4.spiral_budget(1), util::pow2(4) / 4);
  EXPECT_EQ(s4.spiral_budget(3), util::pow2(8) / 4);
  EXPECT_EQ(s4.spiral_budget(10), util::pow2(22) / 4);

  const KnownKStrategy s1(1);
  EXPECT_EQ(s1.spiral_budget(5), util::pow2(12));

  // Clamped to >= 1 when k exceeds 2^(2i+2).
  const KnownKStrategy huge(1 << 20);
  EXPECT_EQ(huge.spiral_budget(1), 1);

  // Saturates instead of overflowing for unreachably large phases.
  EXPECT_EQ(s1.spiral_budget(31), util::kTimeCap);
}

TEST(KnownK, BallRadiusDoublesThenCaps) {
  const KnownKStrategy s(2);
  EXPECT_EQ(s.ball_radius(1), 2);
  EXPECT_EQ(s.ball_radius(10), 1024);
  EXPECT_EQ(s.ball_radius(kMaxRadiusExponent + 5), kMaxBallRadius);
}

TEST(KnownK, OpStreamFollowsTripCycle) {
  const KnownKStrategy strategy(2);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(11);
  for (int trip = 0; trip < 30; ++trip) {
    const Op go = program->next(rng);
    ASSERT_TRUE(std::holds_alternative<GoTo>(go)) << trip;
    const Op sp = program->next(rng);
    ASSERT_TRUE(std::holds_alternative<SpiralFor>(sp)) << trip;
    const Op ret = program->next(rng);
    ASSERT_TRUE(std::holds_alternative<ReturnToSource>(ret)) << trip;
  }
}

TEST(KnownK, StageScheduleVisitsPhasesInOrder) {
  // Stage j runs phases i = 1..j, so the sequence of spiral budgets for k=1
  // is 2^4; 2^4, 2^6; 2^4, 2^6, 2^8; ...
  const KnownKStrategy strategy(1);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(12);
  std::vector<sim::Time> budgets;
  for (int trip = 0; trip < 10; ++trip) {
    (void)program->next(rng);  // GoTo
    const Op sp = program->next(rng);
    budgets.push_back(std::get<SpiralFor>(sp).duration);
    (void)program->next(rng);  // Return
  }
  const std::vector<sim::Time> expected{
      util::pow2(4),                                              // j=1
      util::pow2(4), util::pow2(6),                               // j=2
      util::pow2(4), util::pow2(6), util::pow2(8),                // j=3
      util::pow2(4), util::pow2(6), util::pow2(8), util::pow2(10)  // j=4
  };
  EXPECT_EQ(budgets, expected);
}

TEST(KnownK, GoToTargetsStayInPhaseBall) {
  const KnownKStrategy strategy(4);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(13);
  // Phase radii follow the stage schedule: stage 1 phase 1 -> B(2),
  // stage 2 phases 1,2 -> B(2), B(4), ...
  const std::vector<std::int64_t> radii{2, 2, 4, 2, 4, 8, 2, 4, 8, 16};
  for (const std::int64_t radius : radii) {
    const Op go = program->next(rng);
    EXPECT_LE(grid::l1_norm(std::get<GoTo>(go).target), radius);
    (void)program->next(rng);
    (void)program->next(rng);
  }
}

TEST(KnownK, IdenticalProgramsForAllAgents) {
  // The paper's agents are identical: with the same randomness the op
  // stream must not depend on the agent index or on k in the context.
  const KnownKStrategy strategy(8);
  const auto p0 = strategy.make_program(sim::AgentContext{0, 1});
  const auto p1 = strategy.make_program(sim::AgentContext{5, 1024});
  rng::Rng r0(99), r1(99);
  for (int i = 0; i < 60; ++i) {
    const Op a = p0->next(r0);
    const Op b = p1->next(r1);
    ASSERT_EQ(a.index(), b.index());
    if (const auto* go = std::get_if<GoTo>(&a)) {
      EXPECT_EQ(go->target, std::get<GoTo>(b).target);
    } else if (const auto* sp = std::get_if<SpiralFor>(&a)) {
      EXPECT_EQ(sp->duration, std::get<SpiralFor>(b).duration);
    }
  }
}

TEST(KnownK, FindsTreasureQuicklyAtSmallScale) {
  // Theorem 3.1 sanity at tiny scale: k = 4, D = 8; expected time should be
  // within a small constant of D + D^2/k = 24 (generous factor 40 to stay
  // flake-free).
  const KnownKStrategy strategy(4);
  sim::RunConfig config;
  config.trials = 120;
  config.seed = 77;
  const sim::RunStats rs =
      sim::run_trials(strategy, 4, 8, sim::uniform_ring_placement(), config);
  EXPECT_EQ(rs.success_rate, 1.0);
  EXPECT_LT(rs.mean_competitiveness, 40.0);
  EXPECT_GT(rs.time.mean, 0.0);
}

}  // namespace
}  // namespace ants::core
