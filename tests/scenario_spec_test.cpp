#include "scenario/spec.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "scenario/sink.h"
#include "util/cli.h"

namespace ants::scenario {
namespace {

TEST(SpecParse, TextBlockForm) {
  const auto specs = parse_spec_text(
      "# a comment\n"
      "name       = quick\n"
      "strategies = uniform(eps=0.5), known-k\n"
      "ks         = 1, 4, 16\n"
      "distances  = 16, 32\n"
      "placement  = axis\n"
      "schedule   = staggered(gap=4)\n"
      "crash      = doa(p=0.25)\n"
      "trials     = 50\n"
      "seed       = 12345\n"
      "time_cap   = 1000\n");
  ASSERT_EQ(specs.size(), 1u);
  const ScenarioSpec& spec = specs[0];
  EXPECT_EQ(spec.name, "quick");
  EXPECT_EQ(spec.strategies,
            (std::vector<std::string>{"uniform(eps=0.5)", "known-k"}));
  EXPECT_EQ(spec.ks, (std::vector<std::int64_t>{1, 4, 16}));
  EXPECT_EQ(spec.distances, (std::vector<std::int64_t>{16, 32}));
  EXPECT_EQ(spec.placements, (std::vector<std::string>{"axis"}));
  EXPECT_EQ(spec.schedule, "staggered(gap=4)");
  EXPECT_EQ(spec.crash, "doa(p=0.25)");
  EXPECT_TRUE(spec.is_async());
  EXPECT_EQ(spec.trials, 50);
  EXPECT_EQ(spec.seed, 12345u);
  EXPECT_EQ(spec.time_cap, 1000);
}

TEST(SpecParse, PlacementListIsASweepAxis) {
  const auto specs = parse_spec_text(
      "strategies = known-k\n"
      "placements = axis, ring-fraction(f=0.25), ring\n");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].placements,
            (std::vector<std::string>{"axis", "ring-fraction(f=0.25)",
                                      "ring"}));
  EXPECT_FALSE(specs[0].is_async());
}

TEST(SpecParse, TargetsListIsASweepAxis) {
  const auto specs = parse_spec_text(
      "strategies = known-k\n"
      "targets    = single, pair(near=0.5), ring-set(n=3)\n");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].targets,
            (std::vector<std::string>{"single", "pair(near=0.5)",
                                      "ring-set(n=3)"}));
  EXPECT_TRUE(specs[0].is_multi_target());
  EXPECT_NO_THROW(specs[0].validate());

  // The default is the classic single-treasure adversary.
  ScenarioSpec plain;
  EXPECT_EQ(plain.targets, (std::vector<std::string>{"single"}));
  EXPECT_FALSE(plain.is_multi_target());
}

TEST(SpecParse, StrategyListSplitsAtTopLevelCommasOnly) {
  const auto specs = parse_spec_text(
      "strategies = levy(mu=2, loop=true, scan=32), known-k(k_belief=4)\n");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].strategies,
            (std::vector<std::string>{"levy(mu=2, loop=true, scan=32)",
                                      "known-k(k_belief=4)"}));
}

TEST(SpecParse, BlankLinesSeparateScenarios) {
  const auto specs = parse_spec_text(
      "name = first\nstrategies = uniform\n"
      "\n"
      "name = second\nstrategies = known-k\ntrials = 7\n");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "first");
  EXPECT_EQ(specs[1].name, "second");
  EXPECT_EQ(specs[1].trials, 7);
}

TEST(SpecParse, JsonLineForm) {
  const auto specs = parse_spec_text(
      "{\"name\": \"j\", \"strategies\": [\"uniform(eps=0.3)\", \"spiral\"], "
      "\"ks\": [1, 4], \"distances\": [8], \"trials\": 20, \"seed\": 99, "
      "\"placement\": \"diagonal\", \"time_cap\": 500}\n");
  ASSERT_EQ(specs.size(), 1u);
  const ScenarioSpec& spec = specs[0];
  EXPECT_EQ(spec.name, "j");
  EXPECT_EQ(spec.strategies,
            (std::vector<std::string>{"uniform(eps=0.3)", "spiral"}));
  EXPECT_EQ(spec.ks, (std::vector<std::int64_t>{1, 4}));
  EXPECT_EQ(spec.distances, (std::vector<std::int64_t>{8}));
  EXPECT_EQ(spec.trials, 20);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.placements, (std::vector<std::string>{"diagonal"}));
  EXPECT_EQ(spec.time_cap, 500);
}

TEST(SpecParse, MixedTextAndJsonScenarios) {
  const auto specs = parse_spec_text(
      "name = text-block\nstrategies = uniform\n"
      "\n"
      "{\"name\": \"json-block\", \"strategies\": [\"known-k\"]}\n");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "text-block");
  EXPECT_EQ(specs[1].name, "json-block");
}

TEST(SpecParse, ErrorsCarryLineNumbers) {
  try {
    parse_spec_text("name = x\nbogus_key = 1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_spec_text("ks = 1, banana\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec_text("{\"name\": \"x\", }\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec_text("no equals sign here\n"),
               std::invalid_argument);
}

TEST(SpecCanonical, RoundTripsThroughTheTextParser) {
  ScenarioSpec spec;
  spec.name = "round-trip";
  spec.strategies = {"levy(scan=32, mu=2)", "known-k"};
  spec.ks = {1, 8};
  spec.distances = {16};
  spec.placements = {"axis", "ring-fraction(f=0.5)"};
  spec.schedule = "staggered( gap=4 )";
  spec.crash = "doa(p=0.25)";
  spec.trials = 33;
  spec.seed = 777;
  spec.time_cap = 250;
  spec.columns = {"strategy", "k", "mean_time"};

  const auto reparsed = parse_spec_text(spec.canonical());
  ASSERT_EQ(reparsed.size(), 1u);
  // Canonical form normalizes strategy specs (sorted params, no spaces),
  // so compare canonical-to-canonical.
  EXPECT_EQ(reparsed[0].canonical(), spec.canonical());
  EXPECT_EQ(reparsed[0].ks, spec.ks);
  EXPECT_EQ(reparsed[0].seed, spec.seed);
  EXPECT_EQ(reparsed[0].columns, spec.columns);
}

TEST(SpecValidate, AcceptsADefaultSpecWithStrategies) {
  ScenarioSpec spec;
  spec.strategies = {"uniform"};
  EXPECT_NO_THROW(spec.validate());
}

TEST(SpecValidate, RejectsBadSpecs) {
  ScenarioSpec empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);  // no strategies

  ScenarioSpec unknown;
  unknown.strategies = {"definitely-not-registered"};
  EXPECT_THROW(unknown.validate(), std::invalid_argument);

  ScenarioSpec bad_placement;
  bad_placement.strategies = {"uniform"};
  bad_placement.placements = {"hexagon"};
  EXPECT_THROW(bad_placement.validate(), std::invalid_argument);

  ScenarioSpec bad_fraction;
  bad_fraction.strategies = {"uniform"};
  bad_fraction.placements = {"ring-fraction(f=1.5)"};
  EXPECT_THROW(bad_fraction.validate(), std::invalid_argument);

  ScenarioSpec bad_schedule;
  bad_schedule.strategies = {"uniform"};
  bad_schedule.schedule = "staggered(delay=4)";  // parameter is 'gap'
  EXPECT_THROW(bad_schedule.validate(), std::invalid_argument);

  ScenarioSpec bad_crash;
  bad_crash.strategies = {"uniform"};
  bad_crash.crash = "doa(p=1.5)";
  EXPECT_THROW(bad_crash.validate(), std::invalid_argument);

  // Schedule/crash variants apply to EVERY strategy family — segment-,
  // step-, and plane-level — through the unified executor.
  ScenarioSpec async_step;
  async_step.strategies = {"random-walk"};
  async_step.time_cap = 1000;
  async_step.schedule = "staggered(gap=4)";
  EXPECT_NO_THROW(async_step.validate());
  async_step.crash = "doa(p=0.5)";
  EXPECT_NO_THROW(async_step.validate());

  ScenarioSpec async_plane;
  async_plane.strategies = {"plane-known-k"};
  async_plane.time_cap = 100000;
  async_plane.schedule = "staggered(gap=4)";
  EXPECT_NO_THROW(async_plane.validate());
  async_plane.crash = "doa(p=0.5)";
  EXPECT_NO_THROW(async_plane.validate());

  // Target sets beyond "single" are an environment axis for every family
  // too — plane cells race continuous sight discs.
  ScenarioSpec multi_plane;
  multi_plane.strategies = {"plane-known-k"};
  multi_plane.time_cap = 100000;
  multi_plane.targets = {"single", "pair(near=0.5)"};
  EXPECT_NO_THROW(multi_plane.validate());
  multi_plane.strategies = {"known-k"};
  EXPECT_NO_THROW(multi_plane.validate());

  ScenarioSpec bad_targets;
  bad_targets.strategies = {"uniform"};
  bad_targets.targets = {"pair(near=1.5)"};
  EXPECT_THROW(bad_targets.validate(), std::invalid_argument);
  bad_targets.targets = {"ring-set(n=0)"};
  EXPECT_THROW(bad_targets.validate(), std::invalid_argument);
  bad_targets.targets = {"hexagon"};
  EXPECT_THROW(bad_targets.validate(), std::invalid_argument);

  // A fixed schedule's delay list must match every k in the grid.
  ScenarioSpec fixed_sched;
  fixed_sched.strategies = {"uniform"};
  fixed_sched.ks = {3};
  fixed_sched.schedule = "fixed(delays=0;5;10)";
  EXPECT_NO_THROW(fixed_sched.validate());
  fixed_sched.ks = {3, 4};
  EXPECT_THROW(fixed_sched.validate(), std::invalid_argument);
  fixed_sched.ks = {3};
  fixed_sched.schedule = "fixed(delays=0;-5;10)";
  EXPECT_THROW(fixed_sched.validate(), std::invalid_argument);

  // Plane-level strategies demand a finite cap (like step-level ones).
  ScenarioSpec uncapped_plane;
  uncapped_plane.strategies = {"plane-known-k"};
  EXPECT_THROW(uncapped_plane.validate(), std::invalid_argument);
  uncapped_plane.time_cap = 100000;
  EXPECT_NO_THROW(uncapped_plane.validate());

  ScenarioSpec bad_trials;
  bad_trials.strategies = {"uniform"};
  bad_trials.trials = 0;
  EXPECT_THROW(bad_trials.validate(), std::invalid_argument);

  ScenarioSpec bad_column;
  bad_column.strategies = {"uniform"};
  bad_column.columns = {"strategy", "not_a_column"};
  EXPECT_THROW(bad_column.validate(), std::invalid_argument);

  // Step-level strategies demand a finite cap.
  ScenarioSpec uncapped_walk;
  uncapped_walk.strategies = {"random-walk"};
  EXPECT_THROW(uncapped_walk.validate(), std::invalid_argument);
  uncapped_walk.time_cap = 1000;
  EXPECT_NO_THROW(uncapped_walk.validate());
}

TEST(SpecFromCli, BuildsASpecFromFlags) {
  std::vector<const char*> args = {
      "prog",
      "--strategies=uniform(eps=0.5); levy(mu=2, loop=true)",
      "--ks=1,8",
      "--ds=4,32",
      "--trials=12",
      "--seed=42",
      "--placement=axis,ring-fraction(f=0.25)",
      "--schedule=uniform-start(max=64)",
      "--crash=exp-life(mean=500)",
      "--time-cap=9000",
      "--columns=strategy,k,mean_time"};
  util::Cli cli(static_cast<int>(args.size()), args.data());
  const ScenarioSpec spec = spec_from_cli(cli);
  cli.finish();
  EXPECT_EQ(spec.strategies,
            (std::vector<std::string>{"uniform(eps=0.5)",
                                      "levy(mu=2, loop=true)"}));
  EXPECT_EQ(spec.ks, (std::vector<std::int64_t>{1, 8}));
  EXPECT_EQ(spec.distances, (std::vector<std::int64_t>{4, 32}));
  EXPECT_EQ(spec.trials, 12);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.placements,
            (std::vector<std::string>{"axis", "ring-fraction(f=0.25)"}));
  EXPECT_EQ(spec.schedule, "uniform-start(max=64)");
  EXPECT_EQ(spec.crash, "exp-life(mean=500)");
  EXPECT_EQ(spec.time_cap, 9000);
  EXPECT_EQ(spec.columns,
            (std::vector<std::string>{"strategy", "k", "mean_time"}));
}

TEST(Columns, KnownAndDefaultColumnSetsAgree) {
  for (const std::string& column : default_columns()) {
    EXPECT_TRUE(is_known_column(column)) << column;
  }
  for (const std::string& column : all_columns()) {
    EXPECT_TRUE(is_known_column(column)) << column;
  }
  EXPECT_FALSE(is_known_column("made_up"));
}

TEST(HashText, StableAndDiscriminating) {
  EXPECT_EQ(hash_text("abc"), hash_text("abc"));
  EXPECT_NE(hash_text("abc"), hash_text("abd"));
  EXPECT_NE(hash_text(""), hash_text("a"));
}

}  // namespace
}  // namespace ants::scenario
