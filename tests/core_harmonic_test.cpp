#include "core/harmonic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>
#include <variant>

#include "sim/runner.h"
#include "util/sat.h"

namespace ants::core {
namespace {

using sim::GoTo;
using sim::Op;
using sim::ReturnToSource;
using sim::SpiralFor;

TEST(Harmonic, RejectsBadDelta) {
  EXPECT_THROW(HarmonicStrategy(0.0), std::invalid_argument);
  EXPECT_THROW(HarmonicStrategy(-0.5), std::invalid_argument);
  EXPECT_NO_THROW(HarmonicStrategy(0.2));
  EXPECT_NO_THROW(HarmonicStrategy(0.8));
}

TEST(Harmonic, RadiusLawHasExponentOnePlusDelta) {
  const HarmonicStrategy s(0.6);
  EXPECT_DOUBLE_EQ(s.radius_law().exponent(), 1.6);
}

TEST(Harmonic, SpiralBudgetIsRadiusPower) {
  const HarmonicStrategy s(0.5);
  EXPECT_EQ(s.spiral_budget(1), 1);
  EXPECT_EQ(s.spiral_budget(4), static_cast<sim::Time>(std::pow(4.0, 2.5)));
  EXPECT_EQ(s.spiral_budget(100),
            static_cast<sim::Time>(std::pow(100.0, 2.5)));
  // Saturation for huge radii.
  EXPECT_EQ(s.spiral_budget(std::int64_t{1} << 40), util::kTimeCap);
}

TEST(Harmonic, TripStructure) {
  const HarmonicStrategy s(0.5);
  const auto program = s.make_program(sim::AgentContext{});
  rng::Rng rng(31);
  for (int trip = 0; trip < 50; ++trip) {
    const Op go = program->next(rng);
    ASSERT_TRUE(std::holds_alternative<GoTo>(go));
    const std::int64_t r = grid::l1_norm(std::get<GoTo>(go).target);
    EXPECT_GE(r, 1);

    const Op sp = program->next(rng);
    ASSERT_TRUE(std::holds_alternative<SpiralFor>(sp));
    // Budget must equal d(u)^(2+delta) for the trip's own u.
    EXPECT_EQ(std::get<SpiralFor>(sp).duration, s.spiral_budget(r));

    ASSERT_TRUE(
        std::holds_alternative<ReturnToSource>(program->next(rng)));
  }
}

TEST(Harmonic, RadiusFrequenciesFollowPowerLaw) {
  const HarmonicStrategy s(0.8);
  const auto program = s.make_program(sim::AgentContext{});
  rng::Rng rng(32);
  std::map<std::int64_t, int> counts;
  const int trips = 60000;
  for (int trip = 0; trip < trips; ++trip) {
    const Op go = program->next(rng);
    ++counts[grid::l1_norm(std::get<GoTo>(go).target)];
    (void)program->next(rng);
    (void)program->next(rng);
  }
  // P(r) proportional to r^-1.8: check r=1 vs r=2 ratio ~ 2^1.8 ~ 3.48.
  ASSERT_GT(counts[1], 1000);
  ASSERT_GT(counts[2], 100);
  const double ratio =
      static_cast<double>(counts[1]) / static_cast<double>(counts[2]);
  EXPECT_NEAR(ratio, std::pow(2.0, 1.8), 0.4);
}

TEST(Harmonic, TargetUniformOnItsRing) {
  // Conditioned on radius 2 (4*2 = 8 nodes), targets should be uniform.
  const HarmonicStrategy s(0.5);
  const auto program = s.make_program(sim::AgentContext{});
  rng::Rng rng(33);
  std::map<std::pair<std::int64_t, std::int64_t>, int> counts;
  int r2_trips = 0;
  for (int trip = 0; trip < 120000 && r2_trips < 8000; ++trip) {
    const Op go = program->next(rng);
    const grid::Point u = std::get<GoTo>(go).target;
    if (grid::l1_norm(u) == 2) {
      ++counts[{u.x, u.y}];
      ++r2_trips;
    }
    (void)program->next(rng);
    (void)program->next(rng);
  }
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [xy, c] : counts) {
    EXPECT_NEAR(c, r2_trips / 8.0, 5 * std::sqrt(r2_trips / 8.0))
        << xy.first << "," << xy.second;
  }
}

TEST(Harmonic, IdenticalForAllAgents) {
  const HarmonicStrategy s(0.4);
  const auto p0 = s.make_program(sim::AgentContext{0, 1});
  const auto p1 = s.make_program(sim::AgentContext{7, 512});
  rng::Rng ra(77), rb(77);
  for (int i = 0; i < 60; ++i) {
    const Op a = p0->next(ra);
    const Op b = p1->next(rb);
    ASSERT_EQ(a.index(), b.index());
    if (const auto* go = std::get_if<GoTo>(&a)) {
      EXPECT_EQ(go->target, std::get<GoTo>(b).target);
    }
  }
}

TEST(Harmonic, ManyAgentsFindNearbyTreasureFast) {
  // Theorem 5.1 regime: k = 32 >> alpha * D^delta for D = 4. Success within
  // a generous cap should be overwhelming, and the median time small.
  const HarmonicStrategy strategy(0.5);
  sim::RunConfig config;
  config.trials = 150;
  config.seed = 41;
  config.time_cap = 1 << 14;
  const sim::RunStats rs =
      sim::run_trials(strategy, 32, 4, sim::uniform_ring_placement(), config);
  EXPECT_GT(rs.success_rate, 0.95);
  EXPECT_LT(rs.time.median, 512.0);
}

}  // namespace
}  // namespace ants::core
