#include "scenario/registry.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ants::scenario {
namespace {

// The complete strategy surface of src/core + src/baselines. A strategy
// added there without a registry entry (or renamed) fails this test.
const char* kExpectedNames[] = {
    "approx-k",        "biased-walk",     "harmonic",
    "hedged",          "known-k",         "known-k-no-return",
    "known-k-rw-local", "levy",           "lowmem-harmonic",
    "lowmem-uniform",  "plane-harmonic",  "plane-known-k",
    "plane-uniform",   "random-walk",     "sector-sweep",
    "spiral",          "sweep-known-k",   "sweep-uniform",
    "uniform",
};

TEST(Registry, EveryStrategyIsRegistered) {
  const auto names = Registry::instance().names();
  ASSERT_EQ(names.size(), std::size(kExpectedNames));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], kExpectedNames[i]) << "at index " << i;
  }
}

TEST(Registry, EveryStrategyConstructibleWithDefaults) {
  for (const char* name : kExpectedNames) {
    SCOPED_TRACE(name);
    const BuiltStrategy built =
        Registry::instance().make(name, BuildContext{4});
    EXPECT_TRUE(built.segment != nullptr || built.step != nullptr ||
                built.plane != nullptr);
    EXPECT_FALSE(built.display_name().empty());
  }
}

TEST(Registry, StepStrategiesAreMarkedAsStep) {
  EXPECT_TRUE(Registry::instance().make("random-walk", {}).is_step());
  EXPECT_TRUE(Registry::instance().make("biased-walk", {}).is_step());
  EXPECT_FALSE(Registry::instance().make("uniform", {}).is_step());
  EXPECT_FALSE(Registry::instance().make("sector-sweep", {}).is_step());
}

TEST(Registry, PlaneStrategiesAreMarkedAsPlane) {
  EXPECT_TRUE(Registry::instance().make("plane-known-k", {}).is_plane());
  EXPECT_TRUE(Registry::instance().make("plane-harmonic", {}).is_plane());
  EXPECT_TRUE(Registry::instance().make("plane-uniform", {}).is_plane());
  EXPECT_FALSE(Registry::instance().make("known-k", {}).is_plane());
  EXPECT_FALSE(Registry::instance().make("random-walk", {}).is_plane());
}

TEST(Registry, DollarKDefaultResolvesToCellK) {
  const BuiltStrategy built =
      Registry::instance().make("known-k", BuildContext{8});
  EXPECT_EQ(built.display_name(), "known-k(k=8)");
}

TEST(Registry, ExplicitParamOverridesDollarKDefault) {
  const BuiltStrategy built =
      Registry::instance().make("known-k(k_belief=64)", BuildContext{8});
  EXPECT_EQ(built.display_name(), "known-k(k=64)");
}

TEST(Registry, ParamsReachTheConstructor) {
  const BuiltStrategy built = Registry::instance().make(
      "levy(mu=2, loop=true, scan=32)", BuildContext{1});
  EXPECT_EQ(built.display_name(), "levy(mu=2,loop,scan=32)");
}

TEST(Registry, UnknownStrategyThrows) {
  EXPECT_THROW(Registry::instance().make("no-such-strategy", {}),
               std::invalid_argument);
}

TEST(Registry, UnknownParameterThrows) {
  EXPECT_THROW(Registry::instance().make("uniform(delta=0.5)", {}),
               std::invalid_argument);
}

TEST(Registry, MalformedParameterValueThrows) {
  EXPECT_THROW(Registry::instance().make("uniform(eps=banana)", {}),
               std::invalid_argument);
  EXPECT_THROW(Registry::instance().make("known-k(k_belief=3.5)", {}),
               std::invalid_argument);
  EXPECT_THROW(Registry::instance().make("levy(loop=maybe)", {}),
               std::invalid_argument);
}

TEST(StrategySpecParse, BareNameAndParams) {
  const StrategySpec bare = parse_strategy_spec("  uniform ");
  EXPECT_EQ(bare.name, "uniform");
  EXPECT_TRUE(bare.params.empty());

  const StrategySpec with = parse_strategy_spec("levy( mu=2 , loop=true )");
  EXPECT_EQ(with.name, "levy");
  ASSERT_EQ(with.params.size(), 2u);
  EXPECT_EQ(with.params.at("mu"), "2");
  EXPECT_EQ(with.params.at("loop"), "true");
}

TEST(StrategySpecParse, CanonicalSortsKeysAndRoundTrips) {
  const StrategySpec spec = parse_strategy_spec("levy(scan=32, mu=2)");
  EXPECT_EQ(spec.canonical(), "levy(mu=2,scan=32)");
  const StrategySpec again = parse_strategy_spec(spec.canonical());
  EXPECT_EQ(again.canonical(), spec.canonical());
}

TEST(StrategySpecParse, GrammarErrorsThrow) {
  EXPECT_THROW(parse_strategy_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_strategy_spec("levy(mu=2"), std::invalid_argument);
  EXPECT_THROW(parse_strategy_spec("levy(mu)"), std::invalid_argument);
  EXPECT_THROW(parse_strategy_spec("levy(mu=)"), std::invalid_argument);
  EXPECT_THROW(parse_strategy_spec("levy(mu=2,mu=3)"), std::invalid_argument);
  EXPECT_THROW(parse_strategy_spec("le vy"), std::invalid_argument);
}

}  // namespace
}  // namespace ants::scenario
