#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "rng/rng.h"
#include "stats/bootstrap.h"
#include "stats/histogram.h"
#include "stats/regression.h"
#include "stats/summary.h"

namespace ants::stats {
namespace {

TEST(Accumulator, MeanVarianceMinMax) {
  Accumulator acc;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.std_error(), acc.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(Accumulator, SingleAndEmpty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, NumericallyStableAroundLargeOffset) {
  Accumulator acc;
  const double offset = 1e12;
  for (int i = 0; i < 1000; ++i) acc.add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(acc.mean(), offset, 1e-2);
  EXPECT_NEAR(acc.variance(), 1.001, 0.01);
}

TEST(Summary, QuantilesOfKnownVector) {
  const Summary s = Summary::from({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(s.median, 5.5);
  EXPECT_DOUBLE_EQ(s.q25, 3.25);
  EXPECT_DOUBLE_EQ(s.q75, 7.75);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 10);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_EQ(s.n, 10u);
}

TEST(Summary, CI95HalfWidth) {
  const Summary s = Summary::from({1, 2, 3, 4, 5});
  EXPECT_NEAR(s.ci95_half(), 1.96 * s.std_error, 1e-12);
}

TEST(Summary, EmptyIsAllZero) {
  const Summary s = Summary::from({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(QuantileSorted, InterpolatesLinearly) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 10);
  EXPECT_DOUBLE_EQ(quantile_sorted({42}, 0.5), 42);
}

TEST(Regression, RecoversExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (const double xi : x) y.push_back(3.0 * xi - 2.0);
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, NoisyLineApproximate) {
  rng::Rng rng(99);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    const double xi = static_cast<double>(i) / 100;
    x.push_back(xi);
    y.push_back(2.5 * xi + 1.0 + (rng.uniform_unit() - 0.5));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 0.02);
  EXPECT_NEAR(fit.intercept, 1.0, 0.2);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Regression, PowerLawExponent) {
  std::vector<double> x, y;
  for (double xi = 1; xi <= 1024; xi *= 2) {
    x.push_back(xi);
    y.push_back(5.0 * std::pow(xi, 1.7));
  }
  const LinearFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, 1.7, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 5.0, 1e-9);
}

TEST(Regression, Validation) {
  EXPECT_THROW(fit_linear({1}, {1}), std::invalid_argument);
  EXPECT_THROW(fit_linear({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(fit_linear({2, 2, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1, -2}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1, 2}, {0, 2}), std::invalid_argument);
}

TEST(Histogram, BinningAndEdges) {
  Histogram h(0, 10, 5);
  h.add(0);     // bin 0
  h.add(1.99);  // bin 0
  h.add(2);     // bin 1
  h.add(9.99);  // bin 4
  h.add(10);    // overflow -> bin 4
  h.add(-1);    // underflow -> bin 0
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0, 4, 2);
  for (int i = 0; i < 8; ++i) h.add(1.0);
  h.add(3.0);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bin
  EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1, 1, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 1, 0), std::invalid_argument);
}

TEST(Histogram, EmptyRenderSaysEmptyAndQuantileIsNaN) {
  const Histogram h(0, 10, 5);
  EXPECT_EQ(h.render(), "(empty: 0 samples)\n");
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(Histogram, RenderAnnotatesSaturation) {
  Histogram h(0, 4, 2);
  h.add(1);
  h.add(-5);  // saturates into bin 0
  h.add(99);  // saturates into bin 1
  const std::string out = h.render(10);
  EXPECT_NE(out.find("saturated: 1 below lo, 1 at/above hi"),
            std::string::npos);
}

TEST(Histogram, QuantileInterpolatesWithinBins) {
  // 100 samples spread uniformly over [0, 10): quantiles track p * 10 to
  // within one bin width.
  Histogram h(0, 10, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 10.0);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 9.0, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, QuantileOnPointMass) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 7; ++i) h.add(3.5);  // all in bin 3 = [3, 4)
  EXPECT_GE(h.quantile(0.5), 3.0);
  EXPECT_LE(h.quantile(0.5), 4.0);
  EXPECT_GE(h.quantile(0.99), 3.0);
  EXPECT_LE(h.quantile(0.99), 4.0);
}

TEST(Histogram, MergeIsExactBinwiseSum) {
  Histogram a(0, 10, 5);
  Histogram b(0, 10, 5);
  Histogram all(0, 10, 5);
  for (int i = 0; i < 40; ++i) {
    const double x = (i * 7 % 11) - 0.5;  // exercises underflow too
    ((i % 2 == 0) ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  ASSERT_EQ(a.total(), all.total());
  for (std::size_t bin = 0; bin < all.bins(); ++bin) {
    EXPECT_EQ(a.count(bin), all.count(bin)) << "bin " << bin;
  }
  EXPECT_EQ(a.underflow(), all.underflow());
  EXPECT_EQ(a.overflow(), all.overflow());
  EXPECT_EQ(a.quantile(0.5), all.quantile(0.5));

  Histogram mismatched(0, 10, 4);
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);
  Histogram shifted(1, 11, 5);
  EXPECT_THROW(a.merge(shifted), std::invalid_argument);
}

TEST(Histogram, AddCountRebuildsSerializedBins) {
  Histogram h(0, 10, 5);
  h.add(1);
  h.add(5);
  h.add(5.5);
  Histogram rebuilt(0, 10, 5);
  for (std::size_t b = 0; b < h.bins(); ++b) {
    if (h.count(b) > 0) rebuilt.add_count(b, h.count(b));
  }
  EXPECT_EQ(rebuilt.total(), h.total());
  EXPECT_EQ(rebuilt.count(0), h.count(0));
  EXPECT_EQ(rebuilt.count(2), h.count(2));
  EXPECT_EQ(rebuilt.quantile(0.5), h.quantile(0.5));
  EXPECT_THROW(rebuilt.add_count(99, 1), std::out_of_range);
}

TEST(Histogram, AddSaturationRestoresClippedCounters) {
  // Saturated samples land in the edge bins AND bump the under/overflow
  // counters; a sparse (bin, count) serialization rebuilds the bins but not
  // the counters. add_saturation closes the gap without double-counting.
  Histogram h(0, 10, 5);
  h.add(-3);  // clips into bin 0, underflow
  h.add(-1);  // clips into bin 0, underflow
  h.add(4);   // in-range
  h.add(25);  // clips into bin 4, overflow
  ASSERT_EQ(h.underflow(), 2u);
  ASSERT_EQ(h.overflow(), 1u);

  Histogram rebuilt(0, 10, 5);
  for (std::size_t b = 0; b < h.bins(); ++b) {
    if (h.count(b) > 0) rebuilt.add_count(b, h.count(b));
  }
  // Bins alone: totals match, saturation lost — the pre-fix behavior.
  EXPECT_EQ(rebuilt.total(), h.total());
  EXPECT_EQ(rebuilt.underflow(), 0u);
  EXPECT_EQ(rebuilt.overflow(), 0u);

  rebuilt.add_saturation(h.underflow(), h.overflow());
  EXPECT_EQ(rebuilt.underflow(), h.underflow());
  EXPECT_EQ(rebuilt.overflow(), h.overflow());
  // No double-count: the clipped samples were already in the edge bins.
  EXPECT_EQ(rebuilt.total(), h.total());
  EXPECT_EQ(rebuilt.count(0), h.count(0));
  EXPECT_EQ(rebuilt.count(4), h.count(4));
  EXPECT_EQ(rebuilt.render(), h.render());
  EXPECT_NE(rebuilt.render().find("(saturated:"), std::string::npos);
}

TEST(Histogram, MergeSumsSaturationCounters) {
  Histogram a(0, 10, 5);
  a.add(-1);
  a.add(12);
  Histogram b(0, 10, 5);
  b.add(-2);
  b.add(-4);
  b.add(99);
  a.merge(b);
  EXPECT_EQ(a.underflow(), 3u);
  EXPECT_EQ(a.overflow(), 2u);
  EXPECT_EQ(a.total(), 5u);
}

TEST(Log2Histogram, DyadicBuckets) {
  Log2Histogram h;
  h.add(0.5);  // bucket 0
  h.add(1);    // bucket 0
  h.add(2);    // bucket 1
  h.add(3);    // bucket 1
  h.add(4);    // bucket 2
  h.add(1023); // bucket 9
  h.add(1024); // bucket 10
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(10), 1u);
  EXPECT_EQ(h.max_bucket(), 10u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Bootstrap, MeanCIBracketsTruth) {
  rng::Rng data_rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) samples.push_back(rng::Rng(data_rng.bits()).uniform_unit() + 2.0);
  rng::Rng boot_rng(8);
  const BootstrapCI ci = bootstrap_mean(samples, boot_rng, 500);
  EXPECT_GT(ci.hi, ci.lo);
  EXPECT_GE(ci.point, ci.lo - 0.05);
  EXPECT_LE(ci.point, ci.hi + 0.05);
  EXPECT_NEAR(ci.point, 2.5, 0.1);
}

TEST(Bootstrap, MedianCI) {
  std::vector<double> samples;
  for (int i = 1; i <= 101; ++i) samples.push_back(static_cast<double>(i));
  rng::Rng rng(9);
  const BootstrapCI ci = bootstrap_median(samples, rng, 300);
  EXPECT_NEAR(ci.point, 51.0, 1e-9);
  EXPECT_LT(ci.lo, 51.0);
  EXPECT_GT(ci.hi, 51.0);
}

TEST(Bootstrap, Validation) {
  rng::Rng rng(10);
  EXPECT_THROW(bootstrap_mean({}, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean({1.0}, rng, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ants::stats
