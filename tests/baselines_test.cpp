#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <variant>
#include <vector>

#include "baselines/biased_walk.h"
#include "baselines/cow_path_1d.h"
#include "baselines/levy.h"
#include "baselines/random_walk.h"
#include "baselines/sector_sweep.h"
#include "baselines/spiral_single.h"
#include "grid/spiral.h"
#include "grid/visited_set.h"
#include "sim/engine.h"
#include "sim/runner.h"
#include "util/sat.h"

namespace ants::baselines {
namespace {

using grid::Point;

TEST(RandomWalk, StepsAreAlwaysAdjacent) {
  const RandomWalkStrategy rw;
  const auto program = rw.make_program(sim::AgentContext{});
  rng::Rng rng(1);
  Point pos = grid::kOrigin;
  for (int i = 0; i < 5000; ++i) {
    const Point next = program->step(rng, pos);
    ASSERT_EQ(grid::l1_dist(next, pos), 1);
    pos = next;
  }
}

TEST(RandomWalk, MeanSquaredDisplacementIsLinear) {
  // E[||X_t||^2] = t for the simple walk; empirical check at t = 400.
  const RandomWalkStrategy rw;
  rng::Rng master(2);
  double sum = 0;
  const int n = 3000;
  for (int trial = 0; trial < n; ++trial) {
    rng::Rng rng = master.child(static_cast<std::uint64_t>(trial));
    const auto program = rw.make_program(sim::AgentContext{});
    Point pos = grid::kOrigin;
    for (int t = 0; t < 400; ++t) pos = program->step(rng, pos);
    sum += static_cast<double>(pos.x * pos.x + pos.y * pos.y);
  }
  EXPECT_NEAR(sum / n, 400.0, 30.0);
}

TEST(BiasedWalk, Validation) {
  EXPECT_THROW(BiasedWalkStrategy(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BiasedWalkStrategy(-0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(BiasedWalkStrategy(0.0, 1.0), std::invalid_argument);
  EXPECT_NO_THROW(BiasedWalkStrategy(0.0, 0.0));
}

TEST(BiasedWalk, OutwardBiasGrowsRadiusFaster) {
  const BiasedWalkStrategy unbiased(0.0, 0.0);
  const BiasedWalkStrategy biased(0.6, 0.0);
  rng::Rng master(3);
  double r_unbiased = 0, r_biased = 0;
  const int n = 800, steps = 300;
  for (int trial = 0; trial < n; ++trial) {
    rng::Rng ra = master.child(2 * static_cast<std::uint64_t>(trial));
    rng::Rng rb = master.child(2 * static_cast<std::uint64_t>(trial) + 1);
    const auto pa = unbiased.make_program(sim::AgentContext{});
    const auto pb = biased.make_program(sim::AgentContext{});
    Point a = grid::kOrigin, b = grid::kOrigin;
    for (int t = 0; t < steps; ++t) {
      a = pa->step(ra, a);
      b = pb->step(rb, b);
    }
    r_unbiased += static_cast<double>(grid::l1_norm(a));
    r_biased += static_cast<double>(grid::l1_norm(b));
  }
  // Biased drift is ballistic (~ bias/2 per step); unbiased is diffusive.
  EXPECT_GT(r_biased / n, 3.0 * r_unbiased / n);
}

TEST(BiasedWalk, PersistenceKeepsDirection) {
  const BiasedWalkStrategy persistent(0.0, 0.9);
  rng::Rng rng(4);
  const auto program = persistent.make_program(sim::AgentContext{});
  Point pos = grid::kOrigin;
  Point prev_step{0, 0};
  int repeats = 0, moves = 0;
  for (int t = 0; t < 4000; ++t) {
    const Point next = program->step(rng, pos);
    const Point step{next.x - pos.x, next.y - pos.y};
    if (t > 0 && step == prev_step) ++repeats;
    ++moves;
    prev_step = step;
    pos = next;
  }
  // With persistence 0.9 plus chance agreement, repeats ~ 0.9 + 0.1/4.
  EXPECT_GT(static_cast<double>(repeats) / moves, 0.85);
}

TEST(Levy, Validation) {
  EXPECT_THROW(LevyStrategy(1.0, false), std::invalid_argument);
  EXPECT_THROW(LevyStrategy(3.5, false), std::invalid_argument);
  EXPECT_THROW(LevyStrategy(2.0, false, -1), std::invalid_argument);
  EXPECT_NO_THROW(LevyStrategy(2.0, true, 100));
}

TEST(Levy, LoopVariantReturnsToSource) {
  const LevyStrategy levy(2.0, /*loop=*/true);
  const auto program = levy.make_program(sim::AgentContext{});
  rng::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const sim::Op fly = program->next(rng);
    ASSERT_TRUE(std::holds_alternative<sim::GoTo>(fly));
    const sim::Op ret = program->next(rng);
    ASSERT_TRUE(std::holds_alternative<sim::ReturnToSource>(ret));
  }
}

TEST(Levy, ScanInsertsSpiral) {
  const LevyStrategy levy(2.0, /*loop=*/true, /*scan=*/64);
  const auto program = levy.make_program(sim::AgentContext{});
  rng::Rng rng(6);
  ASSERT_TRUE(std::holds_alternative<sim::GoTo>(program->next(rng)));
  const sim::Op scan = program->next(rng);
  ASSERT_TRUE(std::holds_alternative<sim::SpiralFor>(scan));
  EXPECT_EQ(std::get<sim::SpiralFor>(scan).duration, 64);
  ASSERT_TRUE(std::holds_alternative<sim::ReturnToSource>(program->next(rng)));
}

TEST(Levy, FlightLengthTailMatchesMu) {
  const LevyStrategy levy(2.5, /*loop=*/true);
  const auto program = levy.make_program(sim::AgentContext{});
  rng::Rng rng(7);
  int long_flights = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const sim::Op fly = program->next(rng);
    const Point target = std::get<sim::GoTo>(fly).target;
    // Euclidean length ~ L1/sqrt(2)..L1; use L1 as a proxy threshold.
    if (grid::l1_norm(target) > 10) ++long_flights;
    (void)program->next(rng);
  }
  // P(L > 10) = 10^-(mu-1) = 10^-1.5 ~ 0.032 (the lattice rounding and the
  // L1 proxy shift this a bit; just require the right order of magnitude).
  const double frac = static_cast<double>(long_flights) / n;
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 0.10);
}

TEST(SpiralSingle, MatchesPureSpiralTime) {
  // A single agent finds the treasure at exactly spiral_index(tau) steps.
  const SpiralSingleStrategy strategy;
  rng::Rng rng(8);
  for (const Point tau : {Point{3, 2}, Point{-5, 0}, Point{0, -7}}) {
    const sim::SearchResult r = sim::run_search(strategy, 1, tau, rng);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.time, grid::spiral_index(tau));
  }
}

TEST(SpiralSingle, NoSpeedupFromMoreAgents) {
  const SpiralSingleStrategy strategy;
  rng::Rng rng(9);
  const Point tau{6, -4};
  const sim::SearchResult one = sim::run_search(strategy, 1, tau, rng);
  const sim::SearchResult many = sim::run_search(strategy, 16, tau, rng);
  EXPECT_EQ(one.time, many.time);  // identical deterministic agents
}

TEST(SectorSweep, SingleAgentCoversBallInOrder) {
  // k=1: the sweep degenerates to the full spiral ring-by-ring.
  const SectorSweepStrategy strategy;
  rng::Rng rng(10);
  const sim::SearchResult r = sim::run_search(strategy, 1, {4, 4}, rng);
  EXPECT_TRUE(r.found);
  EXPECT_GT(r.time, 0);
}

TEST(SectorSweep, EveryRingNodeCoveredByExactlyOneAgent) {
  // Partition property: for each ring r and k, the arcs tile [0, 8r).
  for (const int k : {1, 2, 3, 5, 8}) {
    for (std::int64_t r = 1; r <= 30; ++r) {
      std::vector<int> owner(static_cast<std::size_t>(8 * r), -1);
      for (int i = 0; i < k; ++i) {
        const std::int64_t lo = 8 * r * i / k;
        const std::int64_t hi = 8 * r * (i + 1) / k;
        for (std::int64_t m = lo; m < hi; ++m) {
          ASSERT_EQ(owner[static_cast<std::size_t>(m)], -1);
          owner[static_cast<std::size_t>(m)] = i;
        }
      }
      for (const int o : owner) ASSERT_NE(o, -1);
    }
  }
}

TEST(SectorSweep, CoversEverythingWithinTimeBudget) {
  // With k=4 agents, every node with Chebyshev norm <= 10 must be visited
  // within a generous horizon (deterministic coverage).
  const SectorSweepStrategy strategy;
  for (std::int64_t x = -10; x <= 10; x += 5) {
    for (std::int64_t y = -10; y <= 10; y += 5) {
      if (x == 0 && y == 0) continue;
      rng::Rng rng(11);
      sim::EngineConfig config;
      config.time_cap = 4000;
      const sim::SearchResult r =
          sim::run_search(strategy, 4, {x, y}, rng, config);
      EXPECT_TRUE(r.found) << x << "," << y;
    }
  }
}

TEST(SectorSweep, MoreAgentsFindFaster) {
  const SectorSweepStrategy strategy;
  rng::Rng rng(12);
  const Point tau{0, 20};
  const sim::SearchResult k1 = sim::run_search(strategy, 1, tau, rng);
  const sim::SearchResult k8 = sim::run_search(strategy, 8, tau, rng);
  EXPECT_TRUE(k1.found);
  EXPECT_TRUE(k8.found);
  EXPECT_LT(k8.time, k1.time);
}

TEST(CowPath, FindsEveryTarget) {
  for (std::int64_t d = 1; d <= 200; ++d) {
    const CowPathResult right = cow_path_doubling(d);
    const CowPathResult left = cow_path_doubling(-d);
    EXPECT_GE(right.steps, d);
    EXPECT_GE(left.steps, d);
    EXPECT_GE(right.competitive_ratio, 1.0);
    EXPECT_GE(left.competitive_ratio, 1.0);
  }
}

TEST(CowPath, NineCompetitive) {
  EXPECT_LE(cow_path_worst_ratio(1 << 12), 9.0 + 1e-9);
}

TEST(CowPath, WorstCaseApproachesNine) {
  // Adversarial target just past a turn point: ratio -> 9 from below.
  EXPECT_GT(cow_path_worst_ratio(1 << 12), 8.5);
}

TEST(CowPath, ImmediateHitIsOptimal) {
  const CowPathResult r = cow_path_doubling(1);
  EXPECT_EQ(r.steps, 1);
  EXPECT_EQ(r.turns, 0);
  EXPECT_DOUBLE_EQ(r.competitive_ratio, 1.0);
}

TEST(CowPath, Validation) {
  EXPECT_THROW(cow_path_doubling(0), std::invalid_argument);
  EXPECT_THROW(cow_path_worst_ratio(0), std::invalid_argument);
}

}  // namespace
}  // namespace ants::baselines
