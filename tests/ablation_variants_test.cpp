#include "baselines/ablation_variants.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <variant>

#include "core/known_k.h"
#include "grid/point.h"
#include "sim/placement.h"
#include "sim/runner.h"

namespace ants::baselines {
namespace {

using sim::FollowPath;
using sim::GoTo;
using sim::Op;
using sim::ReturnToSource;
using sim::SpiralFor;

TEST(RandomLocal, RejectsBadK) {
  EXPECT_THROW(KnownKRandomLocalStrategy(0), std::invalid_argument);
  EXPECT_THROW(KnownKNoReturnStrategy(-1), std::invalid_argument);
}

TEST(RandomLocal, OpCycleIsGoWalkReturn) {
  const KnownKRandomLocalStrategy strategy(4);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(1);
  for (int trip = 0; trip < 8; ++trip) {
    ASSERT_TRUE(std::holds_alternative<GoTo>(program->next(rng)));
    ASSERT_TRUE(std::holds_alternative<FollowPath>(program->next(rng)));
    ASSERT_TRUE(std::holds_alternative<ReturnToSource>(program->next(rng)));
  }
}

TEST(RandomLocal, WalkBudgetMatchesSpiralSchedule) {
  // The random walk must receive exactly A_k's per-phase step budget.
  const KnownKRandomLocalStrategy strategy(2);
  const core::KnownKStrategy reference(2);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(2);
  // Stage 1 phase 1, stage 2 phases 1,2, stage 3 phases 1,2,3.
  const int phases[] = {1, 1, 2, 1, 2, 3};
  for (const int i : phases) {
    (void)program->next(rng);  // GoTo
    const Op walk = program->next(rng);
    EXPECT_EQ(static_cast<sim::Time>(std::get<FollowPath>(walk).steps.size()),
              reference.spiral_budget(i));
    (void)program->next(rng);  // Return
  }
}

TEST(RandomLocal, WalkStepsAreAdjacentAndAnchored) {
  const KnownKRandomLocalStrategy strategy(1);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(3);
  const Op go = program->next(rng);
  const grid::Point anchor = std::get<GoTo>(go).target;
  const Op walk = program->next(rng);
  const auto& steps = std::get<FollowPath>(walk).steps;
  ASSERT_FALSE(steps.empty());
  EXPECT_TRUE(grid::adjacent(anchor, steps.front()));
  for (std::size_t i = 1; i < steps.size(); ++i) {
    ASSERT_TRUE(grid::adjacent(steps[i - 1], steps[i])) << i;
  }
}

TEST(NoReturn, OpCycleAlternatesGoSpiral) {
  const KnownKNoReturnStrategy strategy(4);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(4);
  for (int trip = 0; trip < 10; ++trip) {
    ASSERT_TRUE(std::holds_alternative<GoTo>(program->next(rng)));
    ASSERT_TRUE(std::holds_alternative<SpiralFor>(program->next(rng)));
  }
}

TEST(NoReturn, SpiralBudgetsFollowAkSchedule) {
  const KnownKNoReturnStrategy strategy(1);
  const core::KnownKStrategy reference(1);
  const auto program = strategy.make_program(sim::AgentContext{});
  rng::Rng rng(5);
  const int phases[] = {1, 1, 2, 1, 2, 3, 1};
  for (const int i : phases) {
    (void)program->next(rng);  // GoTo
    EXPECT_EQ(std::get<SpiralFor>(program->next(rng)).duration,
              reference.spiral_budget(i));
  }
}

TEST(NoReturn, StillFindsTreasure) {
  const KnownKNoReturnStrategy strategy(8);
  sim::RunConfig config;
  config.trials = 100;
  config.seed = 6;
  config.time_cap = 1 << 18;
  const sim::RunStats rs =
      sim::run_trials(strategy, 8, 16, sim::uniform_ring_placement(), config);
  EXPECT_GT(rs.success_rate, 0.95);
}

TEST(RandomLocal, SpiralBeatsRandomWalkLocalSearch) {
  // The ablation's headline at test scale: same budgets, systematic local
  // search wins by a clear multiple.
  sim::RunConfig config;
  config.trials = 80;
  config.seed = 7;
  config.time_cap = 1 << 18;
  const core::KnownKStrategy spiral(4);
  const KnownKRandomLocalStrategy rw(4);
  const sim::RunStats rs_spiral =
      sim::run_trials(spiral, 4, 24, sim::uniform_ring_placement(), config);
  const sim::RunStats rs_rw =
      sim::run_trials(rw, 4, 24, sim::uniform_ring_placement(), config);
  EXPECT_GT(rs_rw.time.median, 1.5 * rs_spiral.time.median);
}

}  // namespace
}  // namespace ants::baselines
