// Environment-aware continuous-plane executor (plane::run_plane_trial) and
// its sim::run_trial plane backend.
//
// The conformance tests pin the zero-delay/no-crash path against a verbatim
// in-test reimplementation of the PRE-environment-port run_plane_search
// loop, field for field — the same technique the unified grid executor used
// for the step/async engines — so the port provably did not move a single
// double on the base model. The environment tests cover the new axes:
// delayed starts, fail-stop lifetimes (including crash-at-time-zero and
// all-agents-dead-before-discovery), and first-of-set sight-disc races.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "plane/engine.h"
#include "plane/strategies.h"
#include "sim/runner.h"
#include "sim/trial.h"

namespace ants::plane {
namespace {

// A plane strategy replaying a fixed op list, then shuttling between home
// and the last target so the run always terminates under a cap.
class ScriptedPlaneStrategy final : public PlaneStrategy {
 public:
  explicit ScriptedPlaneStrategy(std::vector<PlaneOp> ops)
      : ops_(std::move(ops)) {}

  std::string name() const override { return "scripted-plane"; }

  std::unique_ptr<PlaneAgentProgram> make_program(int /*agent*/,
                                                  int /*k*/) const override {
    class Program final : public PlaneAgentProgram {
     public:
      explicit Program(std::vector<PlaneOp> ops) : ops_(std::move(ops)) {}
      PlaneOp next(rng::Rng& /*rng*/) override {
        if (i_ < ops_.size()) return ops_[i_++];
        back_ = !back_;
        return back_ ? PlaneOp{ReturnHome{}} : ops_.back();
      }

     private:
      std::vector<PlaneOp> ops_;
      std::size_t i_ = 0;
      bool back_ = false;
    };
    return std::make_unique<Program>(ops_);
  }

 private:
  std::vector<PlaneOp> ops_;
};

// --- verbatim reimplementation of the legacy (pre-port) engine ------------

Move legacy_realize(const PlaneOp& op, Vec2 current, double pitch) {
  struct Visitor {
    Vec2 current;
    double pitch;

    Move operator()(const GoToPoint& go) const {
      return LineMove{current, go.target};
    }
    Move operator()(const SpiralSweep& sp) const {
      return SpiralMove{current, pitch, sp.duration};
    }
    Move operator()(const ReturnHome&) const {
      return LineMove{current, kPlaneOrigin};
    }
  };
  return std::visit(Visitor{current, pitch}, op);
}

PlaneSearchResult legacy_plane_search(const PlaneStrategy& strategy, int k,
                                      Vec2 treasure, const rng::Rng& trial_rng,
                                      const PlaneEngineConfig& config) {
  PlaneSearchResult result;
  if (distance(treasure, kPlaneOrigin) <= config.sight_radius) {
    result.found = true;
    result.time = 0;
    result.finder = 0;
    return result;
  }

  struct AgentState {
    std::unique_ptr<PlaneAgentProgram> program;
    rng::Rng rng;
    Vec2 pos = kPlaneOrigin;
    Time clock = 0;
    std::int64_t segments = 0;
  };
  std::vector<AgentState> agents;
  agents.reserve(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    agents.push_back(AgentState{strategy.make_program(a, k),
                                trial_rng.child(static_cast<std::uint64_t>(a)),
                                kPlaneOrigin, 0, 0});
  }

  using Entry = std::pair<Time, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int a = 0; a < k; ++a) queue.emplace(0.0, a);

  Time best = kPlaneNever;
  int finder = -1;

  while (!queue.empty()) {
    const auto [clock, a] = queue.top();
    queue.pop();
    const Time bound = std::min(config.time_cap, best);
    if (clock >= bound) break;

    AgentState& agent = agents[static_cast<std::size_t>(a)];
    ++agent.segments;
    ++result.segments;

    const Move move = legacy_realize(agent.program->next(agent.rng),
                                     agent.pos, config.spiral_pitch);
    if (const auto hit = first_sighting(move, treasure, config.sight_radius)) {
      const Time when = agent.clock + *hit;
      if (when <= config.time_cap && when < best) {
        best = when;
        finder = a;
      }
    }
    agent.clock += move_duration(move);
    agent.pos = move_end(move);
    queue.emplace(agent.clock, a);
  }

  if (best != kPlaneNever) {
    result.found = true;
    result.time = best;
    result.finder = finder;
  } else {
    result.found = false;
    result.time = config.time_cap;
    result.finder = -1;
  }
  return result;
}

// --------------------------------------------------------------------------

TEST(PlaneTrialConformance, ZeroDelayNoCrashMatchesLegacyEngineExactly) {
  const PlaneKnownKStrategy known(4);
  const PlaneUniformStrategy uniform(0.5);
  const PlaneHarmonicStrategy harmonic(0.5);
  const PlaneStrategy* strategies[] = {&known, &uniform, &harmonic};

  PlaneEngineConfig config;
  config.time_cap = 200000;
  for (const PlaneStrategy* s : strategies) {
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
      const rng::Rng trial(seed);
      const double angle = 0.26180 * static_cast<double>(seed);
      const Vec2 treasure = unit(angle) * 12.0;

      const PlaneSearchResult legacy =
          legacy_plane_search(*s, 4, treasure, trial, config);

      PlaneTrialEnvironment env;
      env.targets = {treasure};
      const PlaneTrialResult r = run_plane_trial(*s, 4, env, trial, config);
      ASSERT_EQ(r.time, legacy.time) << s->name() << " seed " << seed;
      ASSERT_EQ(r.found, legacy.found);
      ASSERT_EQ(r.finder, legacy.finder);
      ASSERT_EQ(r.segments, legacy.segments);
      EXPECT_EQ(r.crashed, 0);
      EXPECT_EQ(r.last_start, 0.0);
      if (r.found) EXPECT_EQ(r.from_last_start, r.time);

      // The historical entry point is a wrapper over the same executor.
      const PlaneSearchResult wrapped =
          run_plane_search(*s, 4, treasure, trial, config);
      ASSERT_EQ(wrapped.time, legacy.time);
      ASSERT_EQ(wrapped.finder, legacy.finder);
      ASSERT_EQ(wrapped.segments, legacy.segments);
    }
  }
}

TEST(PlaneTrialConformance, SimRunTrialPlaneBackendIsTheSameExecutor) {
  const PlaneHarmonicStrategy s(0.5);
  sim::EngineConfig config;
  config.time_cap = 200000;
  PlaneEngineConfig plane_config;
  plane_config.time_cap = 200000;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const rng::Rng trial(seed);
    const Vec2 treasure = unit(0.5 * static_cast<double>(seed)) * 9.0;

    PlaneTrialEnvironment plane_env;
    plane_env.targets = {treasure};
    const PlaneTrialResult direct =
        run_plane_trial(s, 3, plane_env, trial, plane_config);

    sim::TrialEnvironment env;
    env.plane_targets = {treasure};
    const sim::TrialResult r = sim::run_trial(s, 3, env, trial, config);
    ASSERT_EQ(r.time, direct.time) << seed;
    ASSERT_EQ(r.found, direct.found);
    ASSERT_EQ(r.finder, direct.finder);
    ASSERT_EQ(r.first_target, direct.first_target);
    ASSERT_EQ(r.segments, direct.segments);
  }
}

TEST(PlaneTrial, RejectsBadArguments) {
  const ScriptedPlaneStrategy s({GoToPoint{{1, 0}}});
  const rng::Rng trial(7);
  PlaneTrialEnvironment env;
  env.targets = {Vec2{5, 0}};
  EXPECT_THROW(run_plane_trial(s, 0, env, trial), std::invalid_argument);
  PlaneTrialEnvironment no_targets;
  EXPECT_THROW(run_plane_trial(s, 1, no_targets, trial),
               std::invalid_argument);
  PlaneTrialEnvironment bad_starts = env;
  bad_starts.starts = {0, 0};
  EXPECT_THROW(run_plane_trial(s, 1, bad_starts, trial),
               std::invalid_argument);
  PlaneTrialEnvironment bad_lives = env;
  bad_lives.lifetimes = {10, 10, 10};
  EXPECT_THROW(run_plane_trial(s, 1, bad_lives, trial),
               std::invalid_argument);
  // The sim-level dispatcher requires plane targets for a plane strategy.
  sim::TrialEnvironment grid_env;
  grid_env.targets = {grid::Point{5, 0}};
  EXPECT_THROW(sim::run_trial(s, 1, grid_env, trial), std::invalid_argument);
}

TEST(PlaneTrial, DelayedStartShiftsAbsoluteTime) {
  // One agent walking straight through the treasure's sight disc: base hit
  // at distance 10 - eps = 9, so a start delay of 5 sights it at 14.
  const ScriptedPlaneStrategy s({GoToPoint{{200, 0}}});
  const rng::Rng trial(3);
  PlaneEngineConfig config;
  config.time_cap = 1000;
  PlaneTrialEnvironment env;
  env.targets = {Vec2{10, 0}};
  env.starts = {5};
  const PlaneTrialResult r = run_plane_trial(s, 1, env, trial, config);
  ASSERT_TRUE(r.found);
  EXPECT_NEAR(r.time, 14.0, 1e-9);
  EXPECT_EQ(r.last_start, 5.0);
  EXPECT_NEAR(r.from_last_start, 9.0, 1e-9);
}

TEST(PlaneTrial, EarliestStarterSightsHomeTarget) {
  const ScriptedPlaneStrategy s({GoToPoint{{50, 0}}});
  const rng::Rng trial(3);
  PlaneTrialEnvironment env;
  env.targets = {Vec2{0.5, 0.5}};  // inside the sight disc of home
  env.starts = {7, 3};
  const PlaneTrialResult r = run_plane_trial(s, 2, env, trial);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.time, 3.0);
  EXPECT_EQ(r.finder, 1);
  EXPECT_EQ(r.from_last_start, 0.0);
}

TEST(PlaneTrial, LifetimeTruncatesTheTrajectory) {
  const ScriptedPlaneStrategy s({GoToPoint{{200, 0}}});
  const rng::Rng trial(3);
  PlaneEngineConfig config;
  config.time_cap = 1000;
  PlaneTrialEnvironment env;
  env.targets = {Vec2{10, 0}};

  // Dead at active time 5: the sighting at 9 never happens.
  env.lifetimes = {5};
  const PlaneTrialResult dead = run_plane_trial(s, 1, env, trial, config);
  EXPECT_FALSE(dead.found);
  EXPECT_EQ(dead.crashed, 1);
  EXPECT_EQ(dead.time, 1000.0);

  // Dead at exactly the sighting time: the sighting still counts (the
  // agent sees the treasure with its dying breath), and the halt is still
  // recorded.
  env.lifetimes = {9};
  const PlaneTrialResult edge = run_plane_trial(s, 1, env, trial, config);
  ASSERT_TRUE(edge.found);
  EXPECT_NEAR(edge.time, 9.0, 1e-9);
  EXPECT_EQ(edge.crashed, 1);
}

TEST(PlaneTrial, CrashAtTimeZeroKillsEveryAgentBeforeDiscovery) {
  const ScriptedPlaneStrategy s({GoToPoint{{200, 0}}});
  const rng::Rng trial(3);
  PlaneEngineConfig config;
  config.time_cap = 500;
  PlaneTrialEnvironment env;
  env.targets = {Vec2{10, 0}};
  env.lifetimes = {0, 0, 0};
  const PlaneTrialResult r = run_plane_trial(s, 3, env, trial, config);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.crashed, 3);
  EXPECT_EQ(r.segments, 0);  // dead on arrival: nobody ever acts
  EXPECT_EQ(r.time, 500.0);            // censored, finite
  EXPECT_EQ(r.from_last_start, 500.0)  // finite, no NaN/negative
      << "all-dead trials must censor from_last_start at the cap";
}

TEST(PlaneTrial, FirstOfSetRaceOverSightDiscs) {
  const ScriptedPlaneStrategy s({GoToPoint{{50, 0}}});
  const rng::Rng trial(3);
  PlaneEngineConfig config;
  config.time_cap = 1000;
  PlaneTrialEnvironment env;
  // The walk passes (10,0) before (30,0); target order must not matter.
  env.targets = {Vec2{30, 0}, Vec2{10, 0}};
  const PlaneTrialResult r = run_plane_trial(s, 1, env, trial, config);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.first_target, 1);
  EXPECT_NEAR(r.time, 9.0, 1e-9);
}

// The Monte-Carlo driver runs the plane backend with finite aggregates even
// when every agent dies before discovery in every trial.
TEST(PlaneTrial, RunEnvTrialsAllAgentsDeadStaysFinite) {
  const PlaneKnownKStrategy s(4);
  sim::TrialStrategy strategy;
  strategy.plane = &s;
  sim::RunConfig config;
  config.trials = 8;
  config.seed = 0xDEAD;
  config.time_cap = 5000;
  const sim::AsyncRunStats rs = sim::run_env_trials(
      strategy, 4, 8,
      sim::single_plane_target([](rng::Rng& rng) { return rng.angle(); }),
      sim::SyncStart(), sim::FixedLifetime(0), config);
  EXPECT_EQ(rs.base.success_rate, 0.0);
  EXPECT_DOUBLE_EQ(rs.mean_crashed, 4.0);  // survivors column: k - 4 = 0
  EXPECT_DOUBLE_EQ(rs.base.time.mean, 5000.0);
  EXPECT_DOUBLE_EQ(rs.from_last_start.mean, 5000.0);
  EXPECT_EQ(rs.mean_first_target, -1.0);  // nothing ever found
  EXPECT_TRUE(std::isfinite(rs.base.mean_competitiveness));
}

TEST(PlaneTrial, RunEnvTrialsThreadCountIndependence) {
  const PlaneKnownKStrategy s(2);
  sim::TrialStrategy strategy;
  strategy.plane = &s;
  sim::RunConfig one;
  one.trials = 16;
  one.seed = 77;
  one.time_cap = 100000;
  one.threads = 1;
  sim::RunConfig many = one;
  many.threads = 6;
  const auto angle = [](rng::Rng& rng) { return rng.angle(); };
  const sim::StaggeredStart schedule(2);
  const sim::DoaCrash crashes(0.25);
  const sim::AsyncRunStats a =
      sim::run_env_trials(strategy, 2, 8, sim::single_plane_target(angle),
                          schedule, crashes, one);
  const sim::AsyncRunStats b =
      sim::run_env_trials(strategy, 2, 8, sim::single_plane_target(angle),
                          schedule, crashes, many);
  EXPECT_EQ(a.base.times, b.base.times);
  EXPECT_DOUBLE_EQ(a.mean_crashed, b.mean_crashed);
  EXPECT_DOUBLE_EQ(a.from_last_start.mean, b.from_last_start.mean);
  EXPECT_DOUBLE_EQ(a.mean_last_start, 2.0);  // k = 2, staggered(gap=2)
}

}  // namespace
}  // namespace ants::plane
