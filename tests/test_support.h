// Shared fixtures and helpers for the test suite.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/program.h"

namespace ants::testing {

/// A strategy that replays a fixed op list, then "parks" by shuttling
/// between the source and (-1,-1) forever. Parking advances the simulation
/// clock (so finite engine bounds terminate promptly) while only touching
/// nodes in the tiny third-quadrant square {0,-1}^2 — keep test treasures
/// out of there.
class ScriptedStrategy final : public sim::Strategy {
 public:
  explicit ScriptedStrategy(std::vector<sim::Op> ops) : ops_(std::move(ops)) {}

  std::string name() const override { return "scripted"; }

  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext /*ctx*/) const override {
    class Program final : public sim::AgentProgram {
     public:
      explicit Program(std::vector<sim::Op> ops) : ops_(std::move(ops)) {}
      sim::Op next(rng::Rng& /*rng*/) override {
        if (pos_ < ops_.size()) return ops_[pos_++];
        park_out_ = !park_out_;
        if (park_out_) return sim::GoTo{grid::Point{-1, -1}};
        return sim::ReturnToSource{};
      }

     private:
      std::vector<sim::Op> ops_;  // owned: programs outlive their strategy
      std::size_t pos_ = 0;
      bool park_out_ = false;
    };
    return std::make_unique<Program>(ops_);
  }

 private:
  std::vector<sim::Op> ops_;
};

/// A strategy whose per-agent scripts differ (indexed by agent).
class PerAgentScriptedStrategy final : public sim::Strategy {
 public:
  explicit PerAgentScriptedStrategy(std::vector<std::vector<sim::Op>> scripts)
      : scripts_(std::move(scripts)) {}

  std::string name() const override { return "per-agent-scripted"; }

  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override {
    const auto& script =
        scripts_[static_cast<std::size_t>(ctx.agent_index) % scripts_.size()];
    ScriptedStrategy wrapper{script};
    return wrapper.make_program(ctx);
  }

 private:
  std::vector<std::vector<sim::Op>> scripts_;
};

}  // namespace ants::testing
