# Runs `search_lab run --spec=SPEC --csv=OUT --quiet` and byte-compares OUT
# against GOLDEN. Invoked by CTest (see the golden_* tests in the root
# CMakeLists); keeps the binary-level path under the same regression pin as
# the library-level scenario_golden_test.
#
# The run executes with the full telemetry surface enabled (metrics, event
# log, Chrome trace written next to OUT), so every golden invocation also
# enforces the strict-observation contract at the binary level: a telemetry
# hook that perturbed a result row would break the byte-compare. CI uploads
# the telemetry files as diffing artifacts.
#
#   cmake -DSEARCH_LAB=<bin> -DSPEC=<spec> -DGOLDEN=<csv> -DOUT=<csv>
#         [-DSIMD_LEVEL=scalar|sse2|avx2] -P run_golden.cmake
#
# SIMD_LEVEL, when given, is exported as ANTS_SIMD_LEVEL so the batch
# executor's dispatch is pinned for the run: the golden CSVs must be
# byte-identical on EVERY dispatch path, not just the one this machine
# detects. Levels above the host's capability clamp down (see
# sim/batch/kernels.cpp), so forcing avx2 is safe anywhere — on an
# SSE2-only host it degenerates to a duplicate sse2 run, still a valid pin.
foreach(var SEARCH_LAB SPEC GOLDEN OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_golden.cmake: missing -D${var}=")
  endif()
endforeach()
if(DEFINED SIMD_LEVEL)
  set(ENV{ANTS_SIMD_LEVEL} ${SIMD_LEVEL})
endif()

execute_process(
  COMMAND ${SEARCH_LAB} run --spec=${SPEC} --csv=${OUT} --quiet
          --metrics-out=${OUT}.metrics.json
          --events=${OUT}.events.jsonl
          --trace=${OUT}.trace.json
  RESULT_VARIABLE run_result)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "search_lab failed (${run_result}) on ${SPEC}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR
          "golden mismatch: ${OUT} differs from ${GOLDEN} — a behavior "
          "change reached the experiment tables; regenerate the golden only "
          "if the change is intentional")
endif()
