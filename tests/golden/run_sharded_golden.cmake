# Runs a pinned golden spec as N separate `search_lab run --shard=i/N`
# processes, merges the artifacts with `search_lab merge`, and byte-compares
# the merged CSV against GOLDEN — the binary-level enforcement of the shard
# pipeline's headline invariant (the library-level twin lives in
# tests/scenario_shard_test.cpp).
#
# With -DRESUME=ON it additionally emulates a killed-and-resumed shard:
# after all shards complete, half of the shared cell cache is deleted along
# with shard 1's artifact, and shard 1 reruns — serving the surviving cells
# from cache and recomputing the rest. The merge of the resumed artifact
# must still match GOLDEN byte-for-byte.
#
#   cmake -DSEARCH_LAB=<bin> -DSPEC=<spec> -DGOLDEN=<csv> -DOUT_DIR=<dir>
#         -DN_SHARDS=<n> [-DRESUME=ON] -P run_sharded_golden.cmake
foreach(var SEARCH_LAB SPEC GOLDEN OUT_DIR N_SHARDS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_sharded_golden.cmake: missing -D${var}=")
  endif()
endforeach()

file(REMOVE_RECURSE ${OUT_DIR})
file(MAKE_DIRECTORY ${OUT_DIR})
set(cache_dir ${OUT_DIR}/cache)

# Each shard also writes its telemetry (metrics + event log) next to its
# artifact: the shard artifact embeds the metrics record, so the final
# merge re-aggregates them, and CI uploads the per-shard files for
# monitoring-pipeline debugging. Strictly observational — the byte-compare
# below proves the merged CSV is unaffected.
function(run_one_shard shard)
  execute_process(
    COMMAND ${SEARCH_LAB} run --spec=${SPEC}
            --shard=${shard}/${N_SHARDS}
            --shard-out=${OUT_DIR}/shard_${shard}.jsonl
            --cache-dir=${cache_dir} --quiet
            --metrics-out=${OUT_DIR}/shard_${shard}.metrics.json
            --events=${OUT_DIR}/shard_${shard}.events.jsonl
    RESULT_VARIABLE run_result)
  if(NOT run_result EQUAL 0)
    message(FATAL_ERROR
            "search_lab shard ${shard}/${N_SHARDS} failed (${run_result}) "
            "on ${SPEC}")
  endif()
endfunction()

set(artifacts "")
foreach(shard RANGE 1 ${N_SHARDS})
  run_one_shard(${shard})
  list(APPEND artifacts ${OUT_DIR}/shard_${shard}.jsonl)
endforeach()

if(RESUME)
  # Emulate a mid-run kill of shard 1: its artifact never landed and only
  # part of its cells reached the cache. Deleting every other cache entry
  # (cells of ALL shards — only shard 1 reruns, so its missing cells
  # recompute and other shards' entries are simply unused) forces the rerun
  # down both the cached and the recompute path.
  file(REMOVE ${OUT_DIR}/shard_1.jsonl)
  file(GLOB cache_entries ${cache_dir}/*.cell)
  list(SORT cache_entries)
  set(index 0)
  foreach(entry ${cache_entries})
    math(EXPR keep "${index} % 2")
    if(keep EQUAL 0)
      file(REMOVE ${entry})
    endif()
    math(EXPR index "${index} + 1")
  endforeach()
  run_one_shard(1)
endif()

execute_process(
  COMMAND ${SEARCH_LAB} merge ${artifacts} --csv=${OUT_DIR}/merged.csv
          --metrics-out=${OUT_DIR}/merged.metrics.json --quiet
  RESULT_VARIABLE merge_result)
if(NOT merge_result EQUAL 0)
  message(FATAL_ERROR "search_lab merge failed (${merge_result})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT_DIR}/merged.csv ${GOLDEN}
  RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR
          "sharded golden mismatch: merge of ${N_SHARDS} shards differs "
          "from ${GOLDEN} — the shard pipeline broke the byte-identity "
          "contract (merged CSV and shard artifacts left in ${OUT_DIR})")
endif()
