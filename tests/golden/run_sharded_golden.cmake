# Runs a pinned golden spec as N separate `search_lab run --shard=i/N`
# processes, merges the artifacts with `search_lab merge`, and byte-compares
# the merged CSV against GOLDEN — the binary-level enforcement of the shard
# pipeline's headline invariant (the library-level twin lives in
# tests/scenario_shard_test.cpp).
#
# With -DFORMAT=binary every shard writes the binary columnar artifact
# (artifact.h); -DFORMAT=mixed alternates binary and JSONL shards in ONE
# merge — the byte-compare then proves the two encodings are
# interchangeable at the process level, not just in-library. Default:
# jsonl.
#
# With -DRESUME=ON it additionally emulates a killed-and-resumed shard:
# after all shards complete, half of the shared cell cache is deleted along
# with shard 1's artifact, and shard 1 reruns — serving the surviving cells
# from cache and recomputing the rest. The merge of the resumed artifact
# must still match GOLDEN byte-for-byte. Adding -DPACK=ON compacts the
# surviving cache into the packed journal (`search_lab cache pack`) BEFORE
# the rerun, so the resume is served through the PackedCacheIndex fast path
# — the binary-level kill-and-resume-against-packed-cache gate.
#
# With -DCATALOG=ON the artifact set is additionally smoke-tested through
# `search_lab catalog`: the listing must name every artifact with its
# encoding, and the cell-mode CSV render must produce exactly the plan's
# row count without a merge.
#
#   cmake -DSEARCH_LAB=<bin> -DSPEC=<spec> -DGOLDEN=<csv> -DOUT_DIR=<dir>
#         -DN_SHARDS=<n> [-DFORMAT=jsonl|binary|mixed] [-DRESUME=ON]
#         [-DPACK=ON] [-DCATALOG=ON] -P run_sharded_golden.cmake
foreach(var SEARCH_LAB SPEC GOLDEN OUT_DIR N_SHARDS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_sharded_golden.cmake: missing -D${var}=")
  endif()
endforeach()
if(NOT DEFINED FORMAT)
  set(FORMAT jsonl)
endif()

file(REMOVE_RECURSE ${OUT_DIR})
file(MAKE_DIRECTORY ${OUT_DIR})
set(cache_dir ${OUT_DIR}/cache)

# Per-shard encoding: uniform for jsonl/binary, alternating (odd shards
# binary) for mixed.
foreach(shard RANGE 1 ${N_SHARDS})
  if(FORMAT STREQUAL "binary")
    set(fmt_${shard} binary)
  elseif(FORMAT STREQUAL "mixed")
    math(EXPR odd "${shard} % 2")
    if(odd EQUAL 1)
      set(fmt_${shard} binary)
    else()
      set(fmt_${shard} jsonl)
    endif()
  elseif(FORMAT STREQUAL "jsonl")
    set(fmt_${shard} jsonl)
  else()
    message(FATAL_ERROR "run_sharded_golden.cmake: FORMAT must be "
            "jsonl, binary, or mixed (got '${FORMAT}')")
  endif()
  if(fmt_${shard} STREQUAL "binary")
    set(ext_${shard} bin)
  else()
    set(ext_${shard} jsonl)
  endif()
endforeach()

# Each shard also writes its telemetry (metrics + event log) next to its
# artifact: the shard artifact embeds the metrics record, so the final
# merge re-aggregates them, and CI uploads the per-shard files for
# monitoring-pipeline debugging. Strictly observational — the byte-compare
# below proves the merged CSV is unaffected.
function(run_one_shard shard)
  execute_process(
    COMMAND ${SEARCH_LAB} run --spec=${SPEC}
            --shard=${shard}/${N_SHARDS} --format=${fmt_${shard}}
            --shard-out=${OUT_DIR}/shard_${shard}.${ext_${shard}}
            --cache-dir=${cache_dir} --quiet
            --metrics-out=${OUT_DIR}/shard_${shard}.metrics.json
            --events=${OUT_DIR}/shard_${shard}.events.jsonl
    RESULT_VARIABLE run_result)
  if(NOT run_result EQUAL 0)
    message(FATAL_ERROR
            "search_lab shard ${shard}/${N_SHARDS} failed (${run_result}) "
            "on ${SPEC}")
  endif()
endfunction()

set(artifacts "")
foreach(shard RANGE 1 ${N_SHARDS})
  run_one_shard(${shard})
  list(APPEND artifacts ${OUT_DIR}/shard_${shard}.${ext_${shard}})
endforeach()

if(RESUME)
  # Emulate a mid-run kill of shard 1: its artifact never landed and only
  # part of its cells reached the cache. Deleting every other cache entry
  # (cells of ALL shards — only shard 1 reruns, so its missing cells
  # recompute and other shards' entries are simply unused) forces the rerun
  # down both the cached and the recompute path.
  file(REMOVE ${OUT_DIR}/shard_1.${ext_1})
  file(GLOB cache_entries ${cache_dir}/*.cell)
  list(SORT cache_entries)
  set(index 0)
  foreach(entry ${cache_entries})
    math(EXPR keep "${index} % 2")
    if(keep EQUAL 0)
      file(REMOVE ${entry})
    endif()
    math(EXPR index "${index} + 1")
  endforeach()
  if(PACK)
    # Compact the surviving cells into the packed journal first: the rerun
    # must then resume THROUGH the PackedCacheIndex (cached cells served
    # from the mmap'ed pack, recomputed ones appended to it) and still
    # reproduce GOLDEN below.
    execute_process(
      COMMAND ${SEARCH_LAB} cache pack --cache-dir=${cache_dir}
      RESULT_VARIABLE pack_result)
    if(NOT pack_result EQUAL 0)
      message(FATAL_ERROR "search_lab cache pack failed (${pack_result})")
    endif()
    file(GLOB leftover_cells ${cache_dir}/*.cell)
    if(leftover_cells)
      message(FATAL_ERROR
              "cache pack left per-cell files behind: ${leftover_cells}")
    endif()
  endif()
  run_one_shard(1)
endif()

if(CATALOG)
  # Listing mode: every artifact must appear with its encoding.
  execute_process(
    COMMAND ${SEARCH_LAB} catalog ${artifacts}
    OUTPUT_VARIABLE catalog_listing
    RESULT_VARIABLE catalog_result)
  if(NOT catalog_result EQUAL 0)
    message(FATAL_ERROR "search_lab catalog failed (${catalog_result})")
  endif()
  foreach(shard RANGE 1 ${N_SHARDS})
    string(FIND "${catalog_listing}" "shard_${shard}.${ext_${shard}}" at)
    if(at EQUAL -1)
      message(FATAL_ERROR
              "catalog listing is missing shard_${shard}.${ext_${shard}}:\n"
              "${catalog_listing}")
    endif()
    string(FIND "${catalog_listing}" "${fmt_${shard}}" at)
    if(at EQUAL -1)
      message(FATAL_ERROR
              "catalog listing does not name the ${fmt_${shard}} encoding:\n"
              "${catalog_listing}")
    endif()
  endforeach()

  # Cell mode: rendering every cell across the artifact set (no merge) must
  # emit exactly the plan's cell count — header line + one row per cell of
  # GOLDEN, whose row count is the plan's by construction.
  execute_process(
    COMMAND ${SEARCH_LAB} catalog ${artifacts}
            --csv=${OUT_DIR}/catalog.csv --quiet
    RESULT_VARIABLE catalog_csv_result)
  if(NOT catalog_csv_result EQUAL 0)
    message(FATAL_ERROR
            "search_lab catalog --csv failed (${catalog_csv_result})")
  endif()
  file(STRINGS ${OUT_DIR}/catalog.csv catalog_lines)
  list(LENGTH catalog_lines catalog_n)
  file(STRINGS ${GOLDEN} golden_lines)
  list(LENGTH golden_lines golden_n)
  if(NOT catalog_n EQUAL golden_n)
    message(FATAL_ERROR
            "catalog cell render has ${catalog_n} lines, golden has "
            "${golden_n} — the catalog dropped or duplicated cells")
  endif()
endif()

execute_process(
  COMMAND ${SEARCH_LAB} merge ${artifacts} --csv=${OUT_DIR}/merged.csv
          --metrics-out=${OUT_DIR}/merged.metrics.json --quiet
  RESULT_VARIABLE merge_result)
if(NOT merge_result EQUAL 0)
  message(FATAL_ERROR "search_lab merge failed (${merge_result})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT_DIR}/merged.csv ${GOLDEN}
  RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR
          "sharded golden mismatch: merge of ${N_SHARDS} shards differs "
          "from ${GOLDEN} — the shard pipeline broke the byte-identity "
          "contract (merged CSV and shard artifacts left in ${OUT_DIR})")
endif()
