// The load-bearing property test of the whole simulator: the analytic
// engine (closed-form hit detection, shrinking bounds) must agree EXACTLY
// with a brute-force simulation that materializes every visited node of
// every agent, for every strategy in the library, across many random
// instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/levy.h"
#include "baselines/sector_sweep.h"
#include "baselines/spiral_single.h"
#include "core/harmonic.h"
#include "core/hedged.h"
#include "core/known_k.h"
#include "core/uniform.h"
#include "grid/ball.h"
#include "sim/engine.h"
#include "util/sat.h"

namespace ants::sim {
namespace {

/// Brute-force reference: enumerates every visited node with for_each_visit
/// and returns the earliest treasure visit <= cap (same agent-rng derivation
/// as the engine).
SearchResult brute_force_search(const Strategy& strategy, int k,
                                grid::Point treasure,
                                const rng::Rng& trial_rng, Time cap) {
  SearchResult result;
  result.time = cap;
  Time best = kNeverTime;

  for (int a = 0; a < k; ++a) {
    rng::Rng rng = trial_rng.child(static_cast<std::uint64_t>(a));
    const auto program = strategy.make_program(AgentContext{a, k});
    grid::Point pos = grid::kOrigin;
    Time clock = 0;
    Time hit = kNeverTime;
    while (clock <= cap && hit == kNeverTime) {
      const Segment seg = realize(program->next(rng), pos, grid::kOrigin);
      const Time limit = cap - clock;
      for_each_visit(seg, limit, [&](grid::Point p, Time t) {
        if (hit == kNeverTime && p == treasure) {
          hit = clock + t;
        }
      });
      clock = util::sat_add(clock, duration(seg));
      pos = end_position(seg);
    }
    if (hit != kNeverTime && hit < best) {
      best = hit;
      result.finder = a;
    }
  }

  if (best != kNeverTime) {
    result.found = true;
    result.time = best;
  }
  return result;
}

struct CrossCase {
  std::string label;
  const Strategy* strategy;
};

void expect_engine_matches_brute_force(const Strategy& strategy, int k,
                                       std::uint64_t seed, Time cap) {
  rng::Rng placement_rng(rng::mix_seed(seed, 17));
  const std::int64_t d = placement_rng.uniform_int(1, 24);
  const grid::Point treasure = grid::uniform_ring_point(placement_rng, d);

  const rng::Rng trial_rng(seed);
  EngineConfig config;
  config.time_cap = cap;
  const SearchResult fast = run_search(strategy, k, treasure, trial_rng,
                                       config);
  const SearchResult slow =
      brute_force_search(strategy, k, treasure, trial_rng, cap);

  ASSERT_EQ(fast.found, slow.found)
      << strategy.name() << " k=" << k << " seed=" << seed << " D=" << d;
  ASSERT_EQ(fast.time, slow.time)
      << strategy.name() << " k=" << k << " seed=" << seed << " D=" << d;
  if (fast.found) {
    ASSERT_EQ(fast.finder, slow.finder)
        << strategy.name() << " k=" << k << " seed=" << seed;
  }
}

class CrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossCheckTest, KnownK) {
  const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(GetParam());
  for (const int k : {1, 2, 5}) {
    const core::KnownKStrategy strategy(k);
    expect_engine_matches_brute_force(strategy, k, seed, 3000);
  }
}

TEST_P(CrossCheckTest, KnownKBeliefMismatch) {
  const std::uint64_t seed = 2000 + static_cast<std::uint64_t>(GetParam());
  const core::KnownKStrategy strategy(64);  // belief != true k
  expect_engine_matches_brute_force(strategy, 3, seed, 3000);
}

TEST_P(CrossCheckTest, Uniform) {
  const std::uint64_t seed = 3000 + static_cast<std::uint64_t>(GetParam());
  const core::UniformStrategy strategy(0.4);
  for (const int k : {1, 3}) {
    expect_engine_matches_brute_force(strategy, k, seed, 2500);
  }
}

TEST_P(CrossCheckTest, UniformEpsZero) {
  const std::uint64_t seed = 4000 + static_cast<std::uint64_t>(GetParam());
  const core::UniformStrategy strategy(0.0);
  expect_engine_matches_brute_force(strategy, 2, seed, 2000);
}

TEST_P(CrossCheckTest, Harmonic) {
  const std::uint64_t seed = 5000 + static_cast<std::uint64_t>(GetParam());
  const core::HarmonicStrategy strategy(0.5);
  for (const int k : {1, 4}) {
    expect_engine_matches_brute_force(strategy, k, seed, 2500);
  }
}

TEST_P(CrossCheckTest, HarmonicSmallDelta) {
  const std::uint64_t seed = 6000 + static_cast<std::uint64_t>(GetParam());
  const core::HarmonicStrategy strategy(0.2);
  expect_engine_matches_brute_force(strategy, 2, seed, 2000);
}

TEST_P(CrossCheckTest, Hedged) {
  const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(GetParam());
  const core::HedgedApproxStrategy strategy(256.0, 0.5);
  expect_engine_matches_brute_force(strategy, 2, seed, 2500);
}

TEST_P(CrossCheckTest, LevyFreeAndLoop) {
  const std::uint64_t seed = 8000 + static_cast<std::uint64_t>(GetParam());
  const baselines::LevyStrategy free(2.0, /*loop=*/false);
  const baselines::LevyStrategy loop(1.5, /*loop=*/true, /*scan=*/16);
  expect_engine_matches_brute_force(free, 2, seed, 1500);
  expect_engine_matches_brute_force(loop, 2, seed, 1500);
}

TEST_P(CrossCheckTest, SectorSweep) {
  const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(GetParam());
  const baselines::SectorSweepStrategy strategy;
  for (const int k : {1, 3, 7}) {
    expect_engine_matches_brute_force(strategy, k, seed, 2500);
  }
}

TEST_P(CrossCheckTest, SpiralSingle) {
  const std::uint64_t seed = 9500 + static_cast<std::uint64_t>(GetParam());
  const baselines::SpiralSingleStrategy strategy;
  expect_engine_matches_brute_force(strategy, 2, seed, 4000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheckTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace ants::sim
