// Golden-output regression tests: the pinned specs under tests/golden/ must
// reproduce their checked-in CSVs byte-for-byte, through the same
// parse-spec -> run_sweep -> CsvSink path `search_lab run --csv` uses. (A
// CTest-level twin drives the actual search_lab binary over the same files
// via tests/golden/run_golden.cmake.)
//
// These goldens pin the full numeric surface: spec parsing, cell seeding,
// engine trajectories, aggregation, and column formatting. A diff here means
// a behavior change that silently rewrites every experiment table — bump the
// goldens ONLY for an intentional, understood change.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "scenario/sink.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"

#ifndef ANTS_SOURCE_DIR
#error "ANTS_SOURCE_DIR must point at the repository root"
#endif

namespace ants::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void check_golden(const std::string& stem, unsigned threads) {
  const std::string dir = std::string(ANTS_SOURCE_DIR) + "/tests/golden/";
  const std::vector<ScenarioSpec> specs = parse_spec_file(dir + stem +
                                                          ".spec");
  ASSERT_EQ(specs.size(), 1u);

  SweepOptions opt;
  opt.threads = threads;
  const std::vector<CellResult> results = run_sweep(specs[0], opt);

  const std::string out_path = ::testing::TempDir() + "ants_golden_" + stem +
                               "_" + std::to_string(threads) + ".csv";
  {
    // Scoped so the CSV writer flushes and closes before the comparison.
    CsvSink csv(out_path);
    std::vector<ResultSink*> sinks = {&csv};
    emit_results(specs[0], results, sinks);
  }

  EXPECT_EQ(read_file(out_path), read_file(dir + stem + ".golden.csv"))
      << "golden mismatch for " << stem << " at threads=" << threads;
}

TEST(Golden, SyncSpecReproducesByteForByte) {
  check_golden("sync", 1);
  check_golden("sync", 5);
}

TEST(Golden, AsyncCrashSpecReproducesByteForByte) {
  check_golden("async_crash", 1);
  check_golden("async_crash", 5);
}

TEST(Golden, PlacementSweepSpecReproducesByteForByte) {
  check_golden("placement_sweep", 1);
  check_golden("placement_sweep", 5);
}

// Step-level strategies under schedule/crash — the engine-family gap the
// unified executor closed — pinned next to the paper algorithms.
TEST(Golden, StepAsyncSpecReproducesByteForByte) {
  check_golden("step_async", 1);
  check_golden("step_async", 5);
}

// The target set as a sweep axis (first-of-set races, first_target column).
TEST(Golden, MultiTargetSpecReproducesByteForByte) {
  check_golden("multi_target", 1);
  check_golden("multi_target", 5);
}

// Continuous-plane cells under the base model. Pinned from the
// pre-environment-port plane engine: the plane backend of the unified
// executor must reproduce the zero-delay/no-crash path byte-for-byte.
TEST(Golden, PlaneBaseSpecReproducesByteForByte) {
  check_golden("plane_base", 1);
  check_golden("plane_base", 5);
}

// Plane-level strategies under schedule/crash/multi-target — the last
// engine-family environment gap, closed by the plane backend.
TEST(Golden, PlaneAsyncSpecReproducesByteForByte) {
  check_golden("plane_async", 1);
  check_golden("plane_async", 5);
}

// The target-process axes: Poisson arrival/lifetime windows, a drifting
// target, dwell capture, and collect-all aggregation (time_to_all,
// per-target discovery times, found_before_vanish) — pinned on the
// step-level walkers, the one engine family supporting dwell and drift.
TEST(Golden, StochasticTargetsSpecReproducesByteForByte) {
  check_golden("stochastic_targets", 1);
  check_golden("stochastic_targets", 5);
}

}  // namespace
}  // namespace ants::scenario
