#include "sim/engine.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "test_support.h"

namespace ants::sim {
namespace {

using grid::Point;
using testing::PerAgentScriptedStrategy;
using testing::ScriptedStrategy;

TEST(Realize, GoToMakesWalkFromCurrent) {
  const Segment seg = realize(GoTo{{3, 4}}, {1, 1}, grid::kOrigin);
  EXPECT_EQ(duration(seg), 5);
  EXPECT_EQ(end_position(seg), (Point{3, 4}));
}

TEST(Realize, ReturnWalksToSource) {
  const Segment seg = realize(ReturnToSource{}, {5, -5}, grid::kOrigin);
  EXPECT_EQ(duration(seg), 10);
  EXPECT_EQ(end_position(seg), grid::kOrigin);
}

TEST(Realize, SpiralCenteredAtCurrent) {
  const Segment seg = realize(SpiralFor{8}, {2, 2}, grid::kOrigin);
  EXPECT_EQ(duration(seg), 8);
  EXPECT_EQ(hit_offset(seg, {2, 2}).value(), 0);
}

TEST(Realize, FollowPathStartsAtCurrent) {
  const Segment seg =
      realize(FollowPath{{{1, 1}, {1, 2}}}, {1, 0}, grid::kOrigin);
  EXPECT_EQ(duration(seg), 2);
  EXPECT_EQ(end_position(seg), (Point{1, 2}));
}

TEST(Engine, FindsTreasureOnScriptedRoute) {
  // Walk to (4,0), spiral 8 (covers ring 1 around it), return.
  const ScriptedStrategy strategy(
      {GoTo{{4, 0}}, SpiralFor{8}, ReturnToSource{}});
  // Treasure directly on the walk: hit at time 2.
  rng::Rng rng(1);
  SearchResult r = run_search(strategy, 1, {2, 0}, rng);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 2);
  EXPECT_EQ(r.finder, 0);

  // Treasure adjacent to (4,0): the spiral reaches (4,1) at offset 2
  // (spiral visits (5,0) at 1, (5,1)... no: relative ring (0,1) has spiral
  // index 3), so time = 4 (walk) + index.
  r = run_search(strategy, 1, {4, 1}, rng);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 4 + grid::spiral_index({0, 1}));
}

TEST(Engine, TreasureAtSourceIsInstant) {
  const ScriptedStrategy strategy({GoTo{{4, 0}}});
  rng::Rng rng(2);
  const SearchResult r = run_search(strategy, 3, grid::kOrigin, rng);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 0);
}

TEST(Engine, MinimumOverAgents) {
  // Agent 0 reaches (6,0) at t=6; agent 1 reaches it at t=2 via (2,0)?? No:
  // agent 1 walks straight to (0,6) — misses. Agent 2 walks to (6,0) but
  // first detours, arriving later. The earliest hit must win.
  const PerAgentScriptedStrategy strategy({
      {GoTo{{6, 0}}},                        // hits (6,0) at t=6
      {GoTo{{0, 6}}},                        // never hits
      {GoTo{{0, 2}}, GoTo{{6, 2}}, GoTo{{6, 0}}},  // hits at 2+6+2=10
  });
  rng::Rng rng(3);
  const SearchResult r = run_search(strategy, 3, {6, 0}, rng, {});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 6);
  EXPECT_EQ(r.finder, 0);
}

TEST(Engine, FinderIsEarliestNotFirstListed) {
  const PerAgentScriptedStrategy strategy({
      {GoTo{{0, 9}}, GoTo{{5, 9}}, GoTo{{5, 0}}},  // long way, hits late
      {GoTo{{5, 0}}},                              // hits (5,0) at t=5
  });
  rng::Rng rng(4);
  const SearchResult r = run_search(strategy, 2, {5, 0}, rng, {});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 5);
  EXPECT_EQ(r.finder, 1);
}

TEST(Engine, CapCensorsSlowRuns) {
  const ScriptedStrategy strategy({GoTo{{100, 0}}});
  rng::Rng rng(5);
  EngineConfig config;
  config.time_cap = 50;
  const SearchResult r = run_search(strategy, 1, {100, 0}, rng, config);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.time, 50);
  EXPECT_EQ(r.finder, -1);
}

TEST(Engine, HitExactlyAtCapCounts) {
  const ScriptedStrategy strategy({GoTo{{50, 0}}});
  rng::Rng rng(6);
  EngineConfig config;
  config.time_cap = 50;
  const SearchResult r = run_search(strategy, 1, {50, 0}, rng, config);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 50);
}

TEST(Engine, SegmentBudgetGuardsNonTermination) {
  // A strategy that never moves: zero-duration segments forever.
  const ScriptedStrategy empty({});
  struct Stuck final : sim::Strategy {
    std::string name() const override { return "stuck"; }
    std::unique_ptr<AgentProgram> make_program(AgentContext) const override {
      class P final : public AgentProgram {
        Op next(rng::Rng&) override { return GoTo{grid::kOrigin}; }
      };
      return std::make_unique<P>();
    }
  };
  rng::Rng rng(7);
  EngineConfig config;
  config.time_cap = 100;
  config.max_segments_per_agent = 1000;
  EXPECT_THROW(run_search(Stuck{}, 1, {5, 5}, rng, config),
               std::runtime_error);
}

TEST(Engine, RejectsNonPositiveK) {
  const ScriptedStrategy strategy({GoTo{{1, 0}}});
  rng::Rng rng(8);
  EXPECT_THROW(run_search(strategy, 0, {1, 0}, rng), std::invalid_argument);
}

TEST(Engine, DeterministicAcrossCalls) {
  const ScriptedStrategy strategy({GoTo{{7, 3}}, SpiralFor{30}});
  rng::Rng rng_a(42), rng_b(42);
  const SearchResult a = run_search(strategy, 4, {6, 3}, rng_a);
  const SearchResult b = run_search(strategy, 4, {6, 3}, rng_b);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.finder, b.finder);
  EXPECT_EQ(a.segments, b.segments);
}

TEST(SingleAgentHitTime, BoundStopsEarly) {
  const ScriptedStrategy strategy({GoTo{{30, 0}}});
  const auto program = strategy.make_program(AgentContext{});
  rng::Rng rng(9);
  std::int64_t segments = 0;
  const Time t = single_agent_hit_time(*program, rng, {30, 0}, grid::kOrigin,
                                       10, 1000, &segments);
  EXPECT_EQ(t, kNeverTime);  // hit at 30 lies beyond bound 10
}

TEST(SingleAgentHitTime, ReportsExactHit) {
  const ScriptedStrategy strategy({GoTo{{3, 3}}, SpiralFor{100}});
  const auto program = strategy.make_program(AgentContext{});
  rng::Rng rng(10);
  const Time t = single_agent_hit_time(*program, rng, {3, 4}, grid::kOrigin,
                                       1 << 20, 1000, nullptr);
  EXPECT_EQ(t, 6 + grid::spiral_index({0, 1}));
}

}  // namespace
}  // namespace ants::sim
