#include "plane/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "plane/strategies.h"
#include "sim/placement.h"
#include "sim/runner.h"
#include "core/known_k.h"

namespace ants::plane {
namespace {

// A plane strategy replaying a fixed op list, then shuttling between home
// and (-1,-1) (mirrors tests/test_support.h for the grid engine).
class ScriptedPlaneStrategy final : public PlaneStrategy {
 public:
  explicit ScriptedPlaneStrategy(std::vector<PlaneOp> ops)
      : ops_(std::move(ops)) {}

  std::string name() const override { return "scripted-plane"; }

  std::unique_ptr<PlaneAgentProgram> make_program(int /*agent*/,
                                                  int /*k*/) const override {
    class Program final : public PlaneAgentProgram {
     public:
      explicit Program(std::vector<PlaneOp> ops) : ops_(std::move(ops)) {}
      PlaneOp next(rng::Rng& /*rng*/) override {
        if (pos_ < ops_.size()) return ops_[pos_++];
        park_out_ = !park_out_;
        if (park_out_) return GoToPoint{Vec2{-1, -1}};
        return ReturnHome{};
      }

     private:
      std::vector<PlaneOp> ops_;
      std::size_t pos_ = 0;
      bool park_out_ = false;
    };
    return std::make_unique<Program>(ops_);
  }

 private:
  std::vector<PlaneOp> ops_;
};

TEST(PlaneEngine, RejectsBadArguments) {
  const ScriptedPlaneStrategy s({GoToPoint{{1, 0}}});
  const rng::Rng trial(1);
  EXPECT_THROW(run_plane_search(s, 0, Vec2{5, 0}, trial),
               std::invalid_argument);
  PlaneEngineConfig config;
  config.sight_radius = 0;
  EXPECT_THROW(run_plane_search(s, 1, Vec2{5, 0}, trial, config),
               std::invalid_argument);
}

TEST(PlaneEngine, TreasureWithinSightOfHomeIsInstant) {
  const ScriptedPlaneStrategy s({GoToPoint{{50, 0}}});
  const rng::Rng trial(2);
  const auto r = run_plane_search(s, 1, Vec2{0.5, 0.5}, trial);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.time, 0.0);
}

TEST(PlaneEngine, StraightWalkHitTimeIsExact) {
  const ScriptedPlaneStrategy s({GoToPoint{{20, 0}}});
  const rng::Rng trial(3);
  const auto r = run_plane_search(s, 1, Vec2{10, 0}, trial);
  ASSERT_TRUE(r.found);
  EXPECT_NEAR(r.time, 9.0, 1e-9);  // sighted at distance eps = 1
  EXPECT_EQ(r.finder, 0);
}

TEST(PlaneEngine, TimeCapCensorsSlowRuns) {
  const ScriptedPlaneStrategy s({GoToPoint{{200, 0}}});
  const rng::Rng trial(4);
  PlaneEngineConfig config;
  config.time_cap = 50.0;
  const auto r = run_plane_search(s, 1, Vec2{199, 0}, trial, config);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.time, 50.0);
}

TEST(PlaneEngine, SpiralSweepFindsNearbyTreasure) {
  const ScriptedPlaneStrategy s({SpiralSweep{5000.0}});
  const rng::Rng trial(5);
  const auto r = run_plane_search(s, 1, Vec2{6, 3}, trial);
  ASSERT_TRUE(r.found);
  // Radius ~6.7 is reached at arc length ~ r^2 * pi / pitch ~ 141; allow
  // the coil slack.
  EXPECT_GT(r.time, 50.0);
  EXPECT_LT(r.time, 400.0);
}

TEST(PlaneEngine, FirstFinderAmongManyWins) {
  // Two-op agents: all head to different corners; only agent 0's path
  // passes the treasure.
  class Fanout final : public PlaneStrategy {
   public:
    std::string name() const override { return "fanout"; }
    std::unique_ptr<PlaneAgentProgram> make_program(int agent,
                                                    int /*k*/) const override {
      class Program final : public PlaneAgentProgram {
       public:
        explicit Program(int agent) : agent_(agent) {}
        PlaneOp next(rng::Rng&) override {
          if (!sent_) {
            sent_ = true;
            const double angle = agent_ * 1.5707963267948966;
            return GoToPoint{unit(angle) * 50.0};
          }
          back_ = !back_;
          return back_ ? PlaneOp{ReturnHome{}} : PlaneOp{GoToPoint{{-1, -1}}};
        }

       private:
        int agent_;
        bool sent_ = false;
        bool back_ = false;
      };
      return std::make_unique<Program>(agent);
    }
  };
  const Fanout s;
  const rng::Rng trial(6);
  const auto r = run_plane_search(s, 4, Vec2{0, 30}, trial);  // on +y axis
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.finder, 1);  // agent 1 heads along +y
  EXPECT_NEAR(r.time, 29.0, 1e-9);
}

TEST(PlaneEngine, DeterministicAcrossCalls) {
  const PlaneHarmonicStrategy s(0.5);
  const rng::Rng trial(7);
  PlaneEngineConfig config;
  config.time_cap = 1e6;
  const auto a = run_plane_search(s, 8, Vec2{15, 9}, trial, config);
  const auto b = run_plane_search(s, 8, Vec2{15, 9}, trial, config);
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.finder, b.finder);
}

// ---------------------------------------------------------------------------
// The grid reduction: plane and grid runs agree up to constants.
// ---------------------------------------------------------------------------

TEST(PlaneVsGrid, KnownKSameOrderOfMagnitude) {
  // Same D, same k, same algorithm family: expected times must be within a
  // single constant factor (the reduction the paper applies in section 2).
  const std::int64_t k = 8, d = 24;
  const int trials = 60;

  // Plane runs.
  const PlaneKnownKStrategy plane_strategy(k);
  double plane_sum = 0;
  for (int t = 0; t < trials; ++t) {
    const rng::Rng trial(static_cast<std::uint64_t>(t) * 7919 + 13);
    rng::Rng placement_rng = trial.child(0xFACADE);
    const Vec2 treasure = unit(placement_rng.angle()) *
                          static_cast<double>(d);
    PlaneEngineConfig config;
    config.time_cap = 1e7;
    const auto r = run_plane_search(plane_strategy, static_cast<int>(k),
                                    treasure, trial, config);
    EXPECT_TRUE(r.found);
    plane_sum += r.time;
  }
  const double plane_mean = plane_sum / trials;

  // Grid runs (Euclidean distance d corresponds to L1 distance up to
  // sqrt(2); use the ring placement at the same nominal D).
  const core::KnownKStrategy grid_strategy(k);
  sim::RunConfig config;
  config.trials = trials;
  config.seed = 1234;
  const sim::RunStats rs = sim::run_trials(
      grid_strategy, static_cast<int>(k), d, sim::uniform_ring_placement(),
      config);

  const double ratio = plane_mean / rs.time.mean;
  EXPECT_GT(ratio, 1.0 / 12.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(PlaneVsGrid, HarmonicSuccessProbabilityComparable) {
  // Theorem 5.1 on both substrates with the same (delta, k, D) and the
  // same relative budget: success rates must both be high.
  const double delta = 0.5;
  const std::int64_t d = 16;
  const int k = 64;
  const double budget =
      32 * (static_cast<double>(d) +
            std::pow(static_cast<double>(d), 2.5) / static_cast<double>(k));

  const PlaneHarmonicStrategy plane_strategy(delta);
  int plane_found = 0;
  const int trials = 80;
  for (int t = 0; t < trials; ++t) {
    const rng::Rng trial(static_cast<std::uint64_t>(t) * 104729 + 7);
    rng::Rng placement_rng = trial.child(0xFACADE);
    const Vec2 treasure =
        unit(placement_rng.angle()) * static_cast<double>(d);
    PlaneEngineConfig config;
    config.time_cap = budget;
    const auto r = run_plane_search(plane_strategy, k, treasure, trial,
                                    config);
    plane_found += r.found;
  }
  EXPECT_GT(static_cast<double>(plane_found) / trials, 0.7);
}

}  // namespace
}  // namespace ants::plane
